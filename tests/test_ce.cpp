// Tests for coded-exposure patterns, encoding (Eqn. 1), and the
// decorrelation statistics of Sec. III.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "ce/encode.h"
#include "ce/pattern.h"
#include "ce/stats.h"
#include "data/synthetic.h"
#include "gradcheck.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace snappix {
namespace {

using ce::CePattern;

TEST(CePatternTest, LongExposureExposesEverything) {
  const CePattern p = CePattern::long_exposure(16, 8);
  EXPECT_EQ(p.total_exposed(), 16 * 8 * 8);
  EXPECT_FLOAT_EQ(p.exposure_fraction(), 1.0F);
  for (const int c : p.exposure_counts()) {
    EXPECT_EQ(c, 16);
  }
}

TEST(CePatternTest, ShortExposurePeriod) {
  const CePattern p = CePattern::short_exposure(16, 4, 8);
  // Slots 0 and 8 exposed -> 2 per pixel.
  for (const int c : p.exposure_counts()) {
    EXPECT_EQ(c, 2);
  }
  EXPECT_TRUE(p.bit(0, 0, 0));
  EXPECT_TRUE(p.bit(8, 2, 3));
  EXPECT_FALSE(p.bit(1, 0, 0));
}

TEST(CePatternTest, SparseRandomExposesExactlyOnce) {
  Rng rng(1);
  const CePattern p = CePattern::sparse_random(16, 8, rng);
  for (const int c : p.exposure_counts()) {
    EXPECT_EQ(c, 1);
  }
  EXPECT_EQ(p.total_exposed(), 64);
}

TEST(CePatternTest, RandomFractionNearP) {
  Rng rng(2);
  const CePattern p = CePattern::random(16, 8, rng, 0.5F);
  EXPECT_NEAR(p.exposure_fraction(), 0.5F, 0.08F);
}

TEST(CePatternTest, FromWeightsThreshold) {
  const Tensor w = Tensor::from_vector({0.2F, 0.8F, 0.5F, 0.9F}, Shape{1, 2, 2});
  const CePattern p = CePattern::from_weights(w);
  EXPECT_FALSE(p.bit(0, 0, 0));
  EXPECT_TRUE(p.bit(0, 0, 1));
  EXPECT_FALSE(p.bit(0, 1, 0));  // 0.5 is not > 0.5
  EXPECT_TRUE(p.bit(0, 1, 1));
}

TEST(CePatternTest, ToTensorAndFullMask) {
  Rng rng(3);
  const CePattern p = CePattern::random(4, 2, rng, 0.5F);
  const Tensor t = p.to_tensor();
  EXPECT_EQ(t.shape(), (Shape{4, 2, 2}));
  const Tensor full = p.full_mask(6, 8);
  EXPECT_EQ(full.shape(), (Shape{4, 6, 8}));
  for (std::int64_t s = 0; s < 4; ++s) {
    for (std::int64_t y = 0; y < 6; ++y) {
      for (std::int64_t x = 0; x < 8; ++x) {
        EXPECT_EQ(full.at({s, y, x}), t.at({s, y % 2, x % 2}));
      }
    }
  }
  EXPECT_THROW(p.full_mask(7, 8), std::runtime_error);
}

TEST(CePatternTest, SaveLoadRoundTrip) {
  Rng rng(4);
  const CePattern p = CePattern::random(16, 8, rng, 0.5F);
  const std::string path =
      (std::filesystem::temp_directory_path() / "snappix_pattern_test.bin").string();
  p.save(path);
  const CePattern q = CePattern::load(path);
  EXPECT_TRUE(p == q);
  std::remove(path.c_str());
}

TEST(CePatternTest, SlotBitsRasterOrder) {
  CePattern p(2, 2);
  p.set_bit(0, 0, 1, true);
  p.set_bit(0, 1, 0, true);
  const auto bits = p.slot_bits(0);
  ASSERT_EQ(bits.size(), 4U);
  EXPECT_EQ(bits[0], 0);
  EXPECT_EQ(bits[1], 1);
  EXPECT_EQ(bits[2], 1);
  EXPECT_EQ(bits[3], 0);
}

TEST(CePatternTest, InvalidArgumentsThrow) {
  EXPECT_THROW(CePattern(0, 8), std::runtime_error);
  EXPECT_THROW(CePattern(16, -1), std::runtime_error);
  CePattern p(4, 4);
  EXPECT_THROW(p.bit(4, 0, 0), std::runtime_error);
  EXPECT_THROW(p.bit(0, 4, 0), std::runtime_error);
}

TEST(CeEncode, MatchesEquationOne) {
  // Hand-computed: 2 slots, tile 1, so mask is per-slot global.
  CePattern p(2, 1);
  p.set_bit(0, 0, 0, true);   // slot 0 on
  p.set_bit(1, 0, 0, false);  // slot 1 off
  const Tensor video = Tensor::from_vector({1, 2, 3, 4,  // frame 0
                                            5, 6, 7, 8},
                                           Shape{1, 2, 2, 2});
  const Tensor coded = ce::ce_encode(video, p);
  EXPECT_TRUE(allclose(coded, Tensor::from_vector({1, 2, 3, 4}, Shape{1, 2, 2})));
}

TEST(CeEncode, LongExposureSumsAllFrames) {
  Rng rng(5);
  const Tensor video = Tensor::rand_uniform(Shape{2, 4, 4, 4}, rng);
  const Tensor coded = ce::ce_encode(video, CePattern::long_exposure(4, 2));
  const Tensor expected = sum(video, 1);
  EXPECT_TRUE(allclose(coded, expected, 1e-5F));
}

TEST(CeEncode, TileRepetitionAppliesSamePatternEverywhere) {
  Rng rng(6);
  CePattern p(2, 2);
  p.set_bit(0, 0, 0, true);
  p.set_bit(1, 1, 1, true);
  const Tensor video = Tensor::rand_uniform(Shape{1, 2, 6, 6}, rng);
  const Tensor coded = ce::ce_encode(video, p);
  for (std::int64_t y = 0; y < 6; ++y) {
    for (std::int64_t x = 0; x < 6; ++x) {
      float expected = 0.0F;
      if (y % 2 == 0 && x % 2 == 0) {
        expected = video.at({0, 0, y, x});
      } else if (y % 2 == 1 && x % 2 == 1) {
        expected = video.at({0, 1, y, x});
      }
      EXPECT_NEAR(coded.at({0, y, x}), expected, 1e-6F);
    }
  }
}

TEST(CeEncode, SingleMatchesBatch) {
  Rng rng(7);
  const CePattern p = CePattern::random(4, 2, rng, 0.5F);
  const Tensor video = Tensor::rand_uniform(Shape{4, 4, 4}, rng);
  const Tensor single = ce::ce_encode_single(video, p);
  const Tensor batched =
      ce::ce_encode(Tensor::from_vector(video.data(), Shape{1, 4, 4, 4}), p);
  EXPECT_TRUE(allclose(single, Tensor::from_vector(batched.data(), Shape{4, 4})));
}

TEST(CeEncode, MismatchedSlotsThrow) {
  const Tensor video = Tensor::zeros(Shape{1, 8, 4, 4});
  EXPECT_THROW(ce::ce_encode(video, CePattern::long_exposure(16, 2)), std::runtime_error);
}

TEST(CeEncode, IndivisibleTileThrows) {
  const Tensor video = Tensor::zeros(Shape{1, 4, 6, 6});
  EXPECT_THROW(ce::ce_encode(video, CePattern::long_exposure(4, 4)), std::runtime_error);
}

TEST(CeEncodeDiff, MatchesFastPathForBinaryWeights) {
  Rng rng(8);
  const CePattern p = CePattern::random(4, 2, rng, 0.5F);
  const Tensor video = Tensor::rand_uniform(Shape{3, 4, 8, 8}, rng);
  const Tensor coded_fast = ce::ce_encode(video, p);
  const Tensor coded_diff = ce::ce_encode_diff(video, p.to_tensor());
  EXPECT_TRUE(allclose(coded_fast, coded_diff, 1e-5F));
}

TEST(CeEncodeDiff, GradientFlowsToWeights) {
  Rng rng(9);
  Tensor weights = Tensor::rand_uniform(Shape{4, 2, 2}, rng, 0.2F, 0.8F, true);
  const Tensor video = Tensor::rand_uniform(Shape{2, 4, 4, 4}, rng);
  Tensor coded = ce::ce_encode_diff(video, weights);
  sum_all(coded).backward();
  // Straight-through: gradient of sum w.r.t. each weight equals the total
  // light falling on the corresponding (slot, within-tile position).
  float total_grad = 0.0F;
  for (const float g : std::vector<float>(weights.grad().data())) {
    total_grad += g;
  }
  float total_light = 0.0F;
  for (const float v : video.data()) {
    total_light += v;
  }
  EXPECT_NEAR(total_grad, total_light, 1e-2F);
}

TEST(NormalizeByExposure, DividesByCounts) {
  CePattern p(2, 2);
  // position (0,0): 2 exposures, (0,1): 1, (1,0): 0, (1,1): 1.
  p.set_bit(0, 0, 0, true);
  p.set_bit(1, 0, 0, true);
  p.set_bit(0, 0, 1, true);
  p.set_bit(1, 1, 1, true);
  const Tensor coded = Tensor::full(Shape{1, 2, 2}, 6.0F);
  const Tensor norm = ce::normalize_by_exposure(coded, p);
  EXPECT_FLOAT_EQ(norm.at({0, 0, 0}), 3.0F);
  EXPECT_FLOAT_EQ(norm.at({0, 0, 1}), 6.0F);
  EXPECT_FLOAT_EQ(norm.at({0, 1, 0}), 0.0F);  // never exposed -> zero
  EXPECT_FLOAT_EQ(norm.at({0, 1, 1}), 6.0F);
}

TEST(CeStats, TileSamplesShape) {
  Rng rng(10);
  const Tensor coded = Tensor::rand_uniform(Shape{3, 8, 8}, rng);
  const Tensor samples = ce::tile_samples(coded, 4);
  EXPECT_EQ(samples.shape(), (Shape{12, 16}));
}

TEST(CeStats, TileSamplesGroupsPixelsCorrectly) {
  // Image whose value encodes the within-tile position.
  std::vector<float> values(4 * 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      values[static_cast<std::size_t>(y * 4 + x)] = static_cast<float>((y % 2) * 2 + (x % 2));
    }
  }
  const Tensor coded = Tensor::from_vector(values, Shape{1, 4, 4});
  const Tensor samples = ce::tile_samples(coded, 2);
  EXPECT_EQ(samples.shape(), (Shape{4, 4}));
  for (std::int64_t s = 0; s < 4; ++s) {
    for (std::int64_t p = 0; p < 4; ++p) {
      EXPECT_EQ(samples.at({s, p}), static_cast<float>(p));
    }
  }
}

TEST(CeStats, ZeroMeanContrastZeroesTileMeans) {
  Rng rng(11);
  const Tensor samples = Tensor::rand_uniform(Shape{6, 9}, rng);
  const Tensor z = ce::zero_mean_contrast(samples);
  const Tensor row_means = mean(z, -1);
  for (const float m : row_means.data()) {
    EXPECT_NEAR(m, 0.0F, 1e-5F);
  }
}

TEST(CeStats, PearsonOfIndependentNoiseIsNearIdentity) {
  Rng rng(12);
  const Tensor samples = Tensor::randn(Shape{4000, 4}, rng);
  const Tensor corr = ce::pearson_matrix(samples);
  EXPECT_EQ(corr.shape(), (Shape{4, 4}));
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      if (i == j) {
        EXPECT_NEAR(corr.at({i, j}), 1.0F, 1e-3F);
      } else {
        EXPECT_NEAR(corr.at({i, j}), 0.0F, 0.06F);
      }
    }
  }
}

TEST(CeStats, PearsonDetectsPerfectCorrelation) {
  Rng rng(13);
  // Column 1 = 2 * column 0 (perfectly correlated); column 2 = -column 0.
  std::vector<float> values;
  for (int s = 0; s < 500; ++s) {
    const float v = rng.normal();
    values.push_back(v);
    values.push_back(2.0F * v);
    values.push_back(-v);
  }
  const Tensor samples = Tensor::from_vector(std::move(values), Shape{500, 3});
  const Tensor corr = ce::pearson_matrix(samples);
  EXPECT_NEAR(corr.at({0, 1}), 1.0F, 1e-3F);
  EXPECT_NEAR(corr.at({0, 2}), -1.0F, 1e-3F);
  EXPECT_NEAR(corr.at({1, 2}), -1.0F, 1e-3F);
}

TEST(CeStats, DecorrelationLossOrdering) {
  // The paper's key observation (Fig. 6 legend): LONG EXPOSURE produces the
  // most correlated coded pixels; sparse/random patterns decorrelate more.
  Rng rng(14);
  data::SceneConfig scene;
  scene.frames = 16;
  scene.height = 32;
  scene.width = 32;
  const data::SyntheticVideoGenerator gen(scene);
  std::vector<float> all;
  const int batch = 12;
  for (int i = 0; i < batch; ++i) {
    const auto sample = gen.sample(rng);
    all.insert(all.end(), sample.video.data().begin(), sample.video.data().end());
  }
  const Tensor videos = Tensor::from_vector(std::move(all), Shape{batch, 16, 32, 32});

  Rng prng(15);
  const float corr_long =
      ce::mean_correlation(ce::ce_encode(videos, CePattern::long_exposure(16, 8)), 8);
  const float corr_random =
      ce::mean_correlation(ce::ce_encode(videos, CePattern::random(16, 8, prng, 0.5F)), 8);
  const float corr_sparse =
      ce::mean_correlation(ce::ce_encode(videos, CePattern::sparse_random(16, 8, prng)), 8);
  EXPECT_GT(corr_long, corr_random);
  EXPECT_GT(corr_random, corr_sparse);
}

TEST(CeStats, DecorrelationLossIsDifferentiable) {
  Rng rng(16);
  Tensor weights = Tensor::rand_uniform(Shape{4, 2, 2}, rng, 0.3F, 0.7F, true);
  const Tensor videos = Tensor::rand_uniform(Shape{4, 4, 8, 8}, rng);
  Tensor coded = ce::ce_encode_diff(videos, weights);
  Tensor loss = ce::decorrelation_loss(coded, 2);
  loss.backward();
  float grad_mag = 0.0F;
  for (const float g : std::vector<float>(weights.grad().data())) {
    grad_mag += std::abs(g);
  }
  EXPECT_GT(grad_mag, 0.0F);
}

// Property sweep: encode-reconstruct budget invariants across pattern types.
struct PatternCase {
  const char* name;
  int slots;
  int tile;
};

class PatternPropertyTest : public ::testing::TestWithParam<PatternCase> {};

TEST_P(PatternPropertyTest, EncodeIsLinearInInput) {
  const auto param = GetParam();
  Rng rng(17);
  const CePattern p = CePattern::random(param.slots, param.tile, rng, 0.5F);
  const std::int64_t hw = param.tile * 4;
  const Tensor a = Tensor::rand_uniform(Shape{2, param.slots, hw, hw}, rng);
  const Tensor b = Tensor::rand_uniform(Shape{2, param.slots, hw, hw}, rng);
  // CE is linear: encode(a + b) == encode(a) + encode(b).
  NoGradGuard guard;
  const Tensor lhs = ce::ce_encode(add(a, b), p);
  const Tensor rhs = add(ce::ce_encode(a, p), ce::ce_encode(b, p));
  EXPECT_TRUE(allclose(lhs, rhs, 1e-5F));
}

TEST_P(PatternPropertyTest, CodedPixelBoundedByExposureCount) {
  const auto param = GetParam();
  Rng rng(18);
  const CePattern p = CePattern::random(param.slots, param.tile, rng, 0.5F);
  const std::int64_t hw = param.tile * 2;
  const Tensor video = Tensor::ones(Shape{1, param.slots, hw, hw});
  const Tensor coded = ce::ce_encode(video, p);
  const auto counts = p.exposure_counts();
  for (std::int64_t y = 0; y < hw; ++y) {
    for (std::int64_t x = 0; x < hw; ++x) {
      const int c = counts[static_cast<std::size_t>((y % param.tile) * param.tile +
                                                    (x % param.tile))];
      EXPECT_NEAR(coded.at({0, y, x}), static_cast<float>(c), 1e-5F);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PatternGrid, PatternPropertyTest,
                         ::testing::Values(PatternCase{"t4_tile2", 4, 2},
                                           PatternCase{"t8_tile4", 8, 4},
                                           PatternCase{"t16_tile8", 16, 8},
                                           PatternCase{"t16_tile4", 16, 4},
                                           PatternCase{"t2_tile1", 2, 1}));

}  // namespace
}  // namespace snappix
