// Observability tests: the histogram percentile / empty-series contract, the
// metrics registry and its JSON + Prometheus exporters, the trace recorder's
// Chrome trace-event output, and the InferenceServer integration — sampled
// frames get complete lifecycles, tracing never changes a served bit, and
// zero-frame summaries render valid JSON.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ce/pattern.h"
#include "core/snappix.h"
#include "json_lite.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/camera.h"
#include "runtime/server.h"
#include "runtime/stats.h"
#include "util/rng.h"

namespace snappix {
namespace {

namespace json = testing::json;
using runtime::InferenceServer;
using runtime::ServerConfig;
using runtime::Task;
using runtime::TaskResult;

// --- obs::Histogram ----------------------------------------------------------

TEST(ObsHistogram, EmptySeriesContract) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  for (const double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(h.percentile(p), 0.0) << "p" << p;
    EXPECT_TRUE(std::isfinite(h.percentile(p)));
  }
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0U);
  EXPECT_EQ(snap.min, 0.0);
  EXPECT_EQ(snap.max, 0.0);
  EXPECT_EQ(snap.p50, 0.0);
}

TEST(ObsHistogram, SingleSampleReportsItselfEverywhere) {
  obs::Histogram h;
  h.observe(0.0042);
  EXPECT_EQ(h.count(), 1U);
  EXPECT_NEAR(h.mean(), 0.0042, 1e-12);
  // With one sample the clamp to [min, max] pins every percentile to it.
  for (const double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_NEAR(h.percentile(p), 0.0042, 1e-12) << "p" << p;
  }
}

TEST(ObsHistogram, PercentilesInterpolateWithinTheRightBucket) {
  obs::Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.observe(static_cast<double>(i) * 1e-3);  // 1 ms .. 100 ms
  }
  // Rank 50 lands in the (20 ms, 50 ms] bucket, rank 99 in (50 ms, 100 ms].
  EXPECT_GT(h.percentile(50.0), 0.020);
  EXPECT_LE(h.percentile(50.0), 0.050 + 1e-12);
  EXPECT_GT(h.percentile(99.0), 0.050);
  EXPECT_LE(h.percentile(99.0), 0.100 + 1e-12);
  EXPECT_NEAR(h.mean(), 0.0505, 1e-12);
}

TEST(ObsHistogram, PercentileMonotoneAndClampedToObservedRange) {
  obs::Histogram h;
  for (const double v : {0.003, 0.0031, 0.0032, 0.07, 0.072}) {
    h.observe(v);
  }
  double prev = -1.0;
  for (double p = 0.0; p <= 100.0; p += 2.5) {
    const double q = h.percentile(p);
    EXPECT_GE(q, prev) << "percentile not monotone at p=" << p;
    EXPECT_GE(q, 0.003);
    EXPECT_LE(q, 0.072);
    prev = q;
  }
}

TEST(ObsHistogram, OverflowBucketCannotLeakInfinity) {
  obs::Histogram h;
  h.observe(99.0);  // beyond the 10 s top bound -> overflow bucket
  h.observe(150.0);
  for (const double p : {50.0, 95.0, 99.0, 100.0}) {
    EXPECT_TRUE(std::isfinite(h.percentile(p)));
    EXPECT_LE(h.percentile(p), 150.0);
  }
  EXPECT_NEAR(h.percentile(100.0), 150.0, 1e-9);
}

TEST(ObsHistogram, NonFiniteObservationsAreIgnored) {
  obs::Histogram h;
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 0U);
  h.observe(0.5);
  EXPECT_EQ(h.count(), 1U);
  EXPECT_NEAR(h.percentile(50.0), 0.5, 1e-12);
}

// --- runtime::LatencySeries (view over the histogram) ------------------------

TEST(LatencySeries, EmptyThenSingleSample) {
  runtime::LatencySeries series;
  EXPECT_EQ(series.count(), 0U);
  EXPECT_EQ(series.mean(), 0.0);
  EXPECT_EQ(series.percentile(50.0), 0.0);
  EXPECT_EQ(series.percentile(99.0), 0.0);

  series.record(0.010);
  EXPECT_EQ(series.count(), 1U);
  EXPECT_NEAR(series.mean(), 0.010, 1e-12);
  EXPECT_NEAR(series.percentile(50.0), 0.010, 1e-12);
  EXPECT_NEAR(series.percentile(99.0), 0.010, 1e-12);
}

TEST(LatencySeries, PercentileOrderingHolds) {
  runtime::LatencySeries series;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    series.record(1e-4 + 0.05 * rng.uniform());
  }
  const double p50 = series.percentile(50.0);
  const double p95 = series.percentile(95.0);
  const double p99 = series.percentile(99.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 0.0);
}

// --- registry + exporters ----------------------------------------------------

TEST(MetricsRegistry, StableReferencesAndSnapshot) {
  obs::MetricsRegistry registry;
  obs::Counter& frames = registry.counter("frames_total");
  obs::Counter& again = registry.counter("frames_total");
  EXPECT_EQ(&frames, &again);  // create-on-first-use, stable thereafter

  frames.add(3);
  registry.gauge("depth").set_max(7.0);
  registry.gauge("depth").set_max(4.0);  // lower: must not regress the mark
  registry.histogram("lat_seconds").observe(0.002);

  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1U);
  EXPECT_EQ(snap.counters[0].first, "frames_total");
  EXPECT_EQ(snap.counters[0].second, 3U);
  ASSERT_EQ(snap.gauges.size(), 1U);
  EXPECT_EQ(snap.gauges[0].second, 7.0);
  ASSERT_EQ(snap.histograms.size(), 1U);
  EXPECT_EQ(snap.histograms[0].name, "lat_seconds");
  EXPECT_EQ(snap.histograms[0].count, 1U);
}

TEST(MetricsExport, JsonParsesAndCarriesEveryMetric) {
  obs::MetricsRegistry registry;
  registry.counter("snappix_frames_total").add(42);
  registry.counter("snappix_batch_flush_total{reason=\"max_batch\"}").add(5);
  registry.gauge("snappix_queue_high_water").set(6.0);
  registry.histogram("snappix_e2e_seconds").observe(0.012);

  const std::string text = obs::to_json(registry.snapshot());
  const json::Value root = json::parse(text);  // throws on invalid JSON
  EXPECT_EQ(root.at("counters").at("snappix_frames_total").number, 42.0);
  EXPECT_EQ(root.at("counters")
                .at("snappix_batch_flush_total{reason=\"max_batch\"}")
                .number,
            5.0);
  EXPECT_EQ(root.at("gauges").at("snappix_queue_high_water").number, 6.0);
  const json::Value& hist = root.at("histograms").at("snappix_e2e_seconds");
  EXPECT_EQ(hist.at("count").number, 1.0);
  EXPECT_TRUE(hist.at("buckets").is_array());
  EXPECT_FALSE(hist.at("buckets").array.empty());
}

TEST(MetricsExport, EmptyRegistryAndEmptyHistogramRenderValidJson) {
  obs::MetricsRegistry registry;
  EXPECT_NO_THROW(json::parse(obs::to_json(registry.snapshot())));

  registry.histogram("untouched_seconds");  // zero observations
  const json::Value root = json::parse(obs::to_json(registry.snapshot()));
  const json::Value& hist = root.at("histograms").at("untouched_seconds");
  EXPECT_EQ(hist.at("count").number, 0.0);
  EXPECT_EQ(hist.at("p99").number, 0.0);  // empty-series contract, exported
}

TEST(MetricsExport, JsonNumberNeverEmitsNonFinite) {
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(obs::json_number(-std::numeric_limits<double>::infinity()), "0");
  EXPECT_NO_THROW(json::parse(obs::json_number(0.25)));
}

TEST(MetricsExport, PrometheusTextCarriesLabelsAndCumulativeBuckets) {
  obs::MetricsRegistry registry;
  registry.counter("snappix_batch_flush_total{reason=\"steal\"}").add(2);
  obs::Histogram& h = registry.histogram("snappix_e2e_seconds");
  h.observe(0.5e-6);  // below the first bound
  h.observe(0.012);

  const std::string text = obs::to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE snappix_batch_flush_total counter"), std::string::npos);
  EXPECT_NE(text.find("snappix_batch_flush_total{reason=\"steal\"} 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE snappix_e2e_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("snappix_e2e_seconds_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("snappix_e2e_seconds_count 2"), std::string::npos);
}

// --- zero-frame summaries ----------------------------------------------------

TEST(ZeroFrameRun, SummaryToStringAndJsonAreNanFree) {
  runtime::RuntimeStats stats;
  const runtime::RuntimeSummary summary = stats.summary(/*wall_seconds=*/0.0);
  EXPECT_EQ(summary.frames, 0U);
  EXPECT_EQ(summary.aggregate_fps, 0.0);
  EXPECT_EQ(summary.compression_ratio, 0.0);
  EXPECT_EQ(summary.end_to_end.p99_ms, 0.0);

  const std::string text = runtime::to_string(summary);
  EXPECT_EQ(text.find("nan"), std::string::npos);
  // Every "inf" in the block must be the "infer" stage label, never a
  // rendered non-finite value (which prints as "inf" or "-inf").
  for (std::size_t pos = text.find("inf"); pos != std::string::npos;
       pos = text.find("inf", pos + 1)) {
    EXPECT_EQ(text.compare(pos, 5, "infer"), 0)
        << "non-finite value rendered at offset " << pos;
  }

  // The JSON artifact path: must parse, and json_lite rejects bare nan/inf
  // tokens outright, so parsing IS the contract check.
  const std::string js =
      runtime::to_json(summary, runtime::FleetEnergyReport{}, "zero_frames");
  EXPECT_NO_THROW(json::parse(js));
}

// --- trace recorder ----------------------------------------------------------

TEST(TraceRecorder, SamplingFollowsSequenceModulo) {
  obs::TraceConfig config;
  config.enabled = true;
  config.sample_every = 4;
  obs::TraceRecorder recorder(config);
  EXPECT_TRUE(recorder.should_sample(0));
  EXPECT_FALSE(recorder.should_sample(1));
  EXPECT_TRUE(recorder.should_sample(8));

  config.sample_every = 0;  // enabled but sampling nothing (the overhead arm)
  obs::TraceRecorder unsampled(config);
  EXPECT_FALSE(unsampled.should_sample(0));
}

TEST(TraceRecorder, RejectsBadConfig) {
  obs::TraceConfig config;
  config.sample_every = -1;
  EXPECT_THROW(obs::TraceRecorder{config}, std::invalid_argument);
  config.sample_every = 1;
  config.max_events_per_lane = 0;
  EXPECT_THROW(obs::TraceRecorder{config}, std::invalid_argument);
}

TEST(TraceRecorder, ChromeJsonIsValidAndCarriesThreadNames) {
  obs::TraceConfig config;
  config.enabled = true;
  obs::TraceRecorder recorder(config);
  obs::TraceLane* lane = recorder.create_lane("shard 0");
  lane->add_complete("serve_batch", 1000, 500, "\"frames\": 3");
  lane->add_async_begin("frame", "frame", 0x200000001ULL, 100);
  lane->add_async_end("frame", "frame", 0x200000001ULL, 1600);

  const json::Value root = json::parse(recorder.chrome_json());
  EXPECT_EQ(root.at("displayTimeUnit").str, "ms");
  const json::Value& events = root.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.array.size(), 4U);  // 1 metadata + 3 events

  const json::Value& meta = events.array[0];
  EXPECT_EQ(meta.at("ph").str, "M");
  EXPECT_EQ(meta.at("args").at("name").str, "shard 0");

  bool saw_complete = false;
  bool saw_async_pair = false;
  int async_begin = 0;
  int async_end = 0;
  for (std::size_t i = 1; i < events.array.size(); ++i) {
    const json::Value& e = events.array[i];
    if (e.at("ph").str == "X") {
      saw_complete = true;
      EXPECT_EQ(e.at("name").str, "serve_batch");
      EXPECT_EQ(e.at("dur").number, 0.5);  // 500 ns = 0.5 us
      EXPECT_EQ(e.at("args").at("frames").number, 3.0);
    } else if (e.at("ph").str == "b") {
      ++async_begin;
      EXPECT_EQ(e.at("cat").str, "frame");
      EXPECT_EQ(e.at("id").str, "0x200000001");
    } else if (e.at("ph").str == "e") {
      ++async_end;
    }
  }
  saw_async_pair = async_begin == 1 && async_end == 1;
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_async_pair);
}

TEST(TraceRecorder, AllEventsSortedByTimestampAndLaneCapEnforced) {
  obs::TraceConfig config;
  config.enabled = true;
  config.max_events_per_lane = 4;
  obs::TraceRecorder recorder(config);
  obs::TraceLane* a = recorder.create_lane("a");
  obs::TraceLane* b = recorder.create_lane("b");
  a->add_complete("late", 900, 10, {});
  b->add_complete("early", 100, 10, {});
  a->add_complete("mid", 500, 10, {});
  for (int i = 0; i < 10; ++i) {
    a->add_complete("overflow", 1000 + i, 1, {});
  }

  const auto events = recorder.all_events();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns) << "events not time-sorted";
  }
  EXPECT_EQ(a->size(), 4U);  // capped
  EXPECT_GT(recorder.dropped_events(), 0U);
}

TEST(ScopedSpan, NoOpWithoutLaneEmitsWithLane) {
  obs::TraceConfig config;
  config.enabled = true;
  obs::TraceRecorder recorder(config);
  obs::TraceLane* lane = recorder.create_lane("worker");

  { obs::ScopedSpan span("orphan"); }  // no TLS lane installed: must vanish
  EXPECT_EQ(lane->size(), 0U);

  {
    obs::ScopedTraceLane scope(&recorder, lane);
    obs::ScopedSpan span("encode");
  }
  ASSERT_EQ(lane->size(), 1U);
  EXPECT_EQ(obs::current_lane(), nullptr);  // TLS restored on scope exit

  const auto events = recorder.all_events();
  EXPECT_EQ(events[0].name, "encode");
  EXPECT_EQ(events[0].ph, 'X');
  EXPECT_GE(events[0].dur_ns, 0);
}

// --- server integration ------------------------------------------------------

core::SnapPixConfig small_system_config() {
  core::SnapPixConfig cfg;
  cfg.image = 16;
  cfg.frames = 8;
  cfg.num_classes = 4;
  cfg.seed = 3;
  return cfg;
}

data::SceneConfig small_scene() {
  data::SceneConfig scene;
  scene.frames = 8;
  scene.height = 16;
  scene.width = 16;
  scene.num_classes = 4;
  return scene;
}

std::vector<ce::CePattern> distinct_patterns(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ce::CePattern> patterns;
  for (int i = 0; i < n; ++i) {
    patterns.push_back(ce::CePattern::random(8, 8, rng, 0.5F));
  }
  return patterns;
}

// Deterministic 4-camera AR+REC fleet; identical across calls with the same
// seeds, so traced and untraced runs see identical inputs.
void add_fleet(InferenceServer& server, const std::vector<ce::CePattern>& patterns) {
  for (int cam = 0; cam < static_cast<int>(patterns.size()); ++cam) {
    auto camera = std::make_unique<runtime::SyntheticCameraSource>(
        cam, small_scene(), patterns[static_cast<std::size_t>(cam)],
        700 + static_cast<std::uint64_t>(cam));
    if (cam % 2 == 1) {
      camera->set_task(Task::kReconstruct);
    }
    server.add_camera(std::move(camera));
  }
}

void expect_results_identical(const std::vector<TaskResult>& a,
                              const std::vector<TaskResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].camera_id, b[i].camera_id);
    EXPECT_EQ(a[i].sequence, b[i].sequence);
    EXPECT_EQ(a[i].predicted, b[i].predicted);
    if (a[i].task == Task::kReconstruct) {
      ASSERT_EQ(a[i].reconstruction.data().size(), b[i].reconstruction.data().size());
      for (std::size_t j = 0; j < a[i].reconstruction.data().size(); ++j) {
        ASSERT_EQ(a[i].reconstruction.data()[j], b[i].reconstruction.data()[j])
            << "reconstruction bits diverged at result " << i << " elem " << j;
      }
    }
  }
}

TEST(ServerTracing, SampledFramesGetCompleteLifecyclesAndBitsDontChange) {
  core::SnapPixSystem system(small_system_config());
  const auto patterns = distinct_patterns(4, 19);
  const std::int64_t frames_per_camera = 6;

  const auto run_fleet = [&](bool traced, int sample_every) {
    ServerConfig config;
    config.batch.max_batch = 4;
    config.shards = 2;
    config.trace.enabled = traced;
    config.trace.sample_every = sample_every;
    auto server = std::make_unique<InferenceServer>(system, config);
    add_fleet(*server, patterns);
    auto results = server->run(frames_per_camera);
    return std::make_pair(std::move(results), std::move(server));
  };

  const auto [untraced, untraced_server] = run_fleet(false, 1);
  ASSERT_EQ(untraced.size(), 24U);
  EXPECT_EQ(untraced_server->trace_recorder(), nullptr);
  EXPECT_THROW(untraced_server->trace_json(), std::runtime_error);

  const auto [traced, server] = run_fleet(true, 1);
  expect_results_identical(untraced, traced);

  // Every served frame was sampled (1-in-1): each must have a COMPLETE
  // lifecycle — matching b/e "frame" events plus every nested stage pair.
  const obs::TraceRecorder* recorder = server->trace_recorder();
  ASSERT_NE(recorder, nullptr);
  EXPECT_EQ(recorder->dropped_events(), 0U);

  std::map<std::uint64_t, std::map<std::string, std::pair<int, int>>> lifecycle;
  std::int64_t prev_ts = std::numeric_limits<std::int64_t>::min();
  for (const obs::TraceEvent& e : recorder->all_events()) {
    EXPECT_GE(e.ts_ns, prev_ts) << "all_events() not sorted";
    prev_ts = e.ts_ns;
    if (e.cat == "frame") {
      auto& pair = lifecycle[e.id][e.name];
      (e.ph == 'b' ? pair.first : pair.second) += 1;
    }
  }
  ASSERT_EQ(lifecycle.size(), 24U) << "one async track per served frame";
  for (const TaskResult& result : traced) {
    const std::uint64_t id =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(result.camera_id)) << 32) |
        static_cast<std::uint64_t>(result.sequence & 0xFFFFFFFF);
    ASSERT_TRUE(lifecycle.count(id))
        << "no lifecycle for camera " << result.camera_id << " seq " << result.sequence;
    const auto& spans = lifecycle.at(id);
    for (const char* name : {"frame", "capture", "queue_wait", "batch_assembly", "infer"}) {
      ASSERT_TRUE(spans.count(name)) << "missing span " << name;
      EXPECT_EQ(spans.at(name).first, 1) << name << " begins";
      EXPECT_EQ(spans.at(name).second, 1) << name << " ends";
    }
  }

  // Per-batch and engine-stage spans landed too, and the export is valid
  // Chrome trace JSON.
  std::set<std::string> complete_names;
  for (const obs::TraceEvent& e : recorder->all_events()) {
    if (e.ph == 'X') {
      complete_names.insert(e.name);
    }
  }
  EXPECT_TRUE(complete_names.count("serve_batch"));
  EXPECT_TRUE(complete_names.count("cache_resolve"));
  EXPECT_TRUE(complete_names.count("encode"));
  const json::Value root = json::parse(server->trace_json());
  EXPECT_FALSE(root.at("traceEvents").array.empty());

  // Metrics surfaced through the same run: counters match the run shape and
  // flush reasons partition the batches.
  const obs::MetricsSnapshot snap = server->metrics_snapshot();
  std::uint64_t frames_total = 0;
  std::uint64_t flush_total = 0;
  std::uint64_t batches_total = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "snappix_frames_total") {
      frames_total = value;
    } else if (name == "snappix_batches_total") {
      batches_total = value;
    } else if (name.rfind("snappix_batch_flush_total", 0) == 0) {
      flush_total += value;
    }
  }
  EXPECT_EQ(frames_total, 24U);
  EXPECT_GT(batches_total, 0U);
  EXPECT_EQ(flush_total, batches_total);

  const runtime::RuntimeSummary summary = server->summary();
  EXPECT_EQ(summary.flush_max_batch + summary.flush_max_latency +
                summary.flush_exhausted + summary.flush_holdback + summary.flush_steal,
            summary.batches);
  EXPECT_EQ(summary.flush_steal, summary.steal_successes);
}

TEST(ServerTracing, OneInNSamplingTracesOnlyMatchingSequences) {
  core::SnapPixSystem system(small_system_config());
  const auto patterns = distinct_patterns(2, 47);

  ServerConfig config;
  config.batch.max_batch = 2;
  config.trace.enabled = true;
  config.trace.sample_every = 4;
  InferenceServer server(system, config);
  add_fleet(server, patterns);
  const auto results = server.run(8);
  ASSERT_EQ(results.size(), 16U);

  std::set<std::uint64_t> lifecycle_ids;
  for (const obs::TraceEvent& e : server.trace_recorder()->all_events()) {
    if (e.cat == "frame") {
      lifecycle_ids.insert(e.id);
    }
  }
  // 8 frames per camera, 1-in-4: sequences 0 and 4 of each camera.
  EXPECT_EQ(lifecycle_ids.size(), 4U);
  for (const std::uint64_t id : lifecycle_ids) {
    EXPECT_EQ((id & 0xFFFFFFFFULL) % 4, 0U) << "unsampled sequence traced";
  }
}

TEST(ServerTracing, MetricsSnapshotRendersBothExportFormats) {
  core::SnapPixSystem system(small_system_config());
  const auto patterns = distinct_patterns(2, 53);

  ServerConfig config;
  config.batch.max_batch = 2;
  InferenceServer server(system, config);
  add_fleet(server, patterns);
  server.run(4);

  const obs::MetricsSnapshot snap = server.metrics_snapshot();
  EXPECT_NO_THROW(json::parse(obs::to_json(snap)));
  const std::string prom = obs::to_prometheus(snap);
  EXPECT_NE(prom.find("snappix_frames_total 8"), std::string::npos);
  EXPECT_NE(prom.find("snappix_e2e_seconds_bucket"), std::string::npos);
}

}  // namespace
}  // namespace snappix
