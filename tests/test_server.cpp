// Task-typed serving tests: pattern hashing, the sharded EngineCache
// (capacity bounds, eviction/refetch determinism), the fused REC decoder
// path's bit-exactness, config validation, shared-pattern ownership, and the
// end-to-end InferenceServer over a heterogeneous multi-pattern AR+REC fleet.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "ce/encode.h"
#include "codec/bitplane.h"
#include "transport/link.h"
#include "core/snappix.h"
#include "runtime/batcher.h"
#include "runtime/camera.h"
#include "runtime/engine.h"
#include "runtime/engine_cache.h"
#include "runtime/frame_queue.h"
#include "runtime/runtime.h"
#include "runtime/server.h"
#include "util/rng.h"

namespace snappix {
namespace {

using runtime::BatchAggregator;
using runtime::BatchPolicy;
using runtime::EngineCache;
using runtime::EngineCacheConfig;
using runtime::Frame;
using runtime::FrameQueue;
using runtime::InferenceServer;
using runtime::PatternRef;
using runtime::ServerConfig;
using runtime::Task;
using runtime::TaskResult;

core::SnapPixConfig small_system_config() {
  core::SnapPixConfig cfg;
  cfg.image = 16;
  cfg.frames = 8;
  cfg.num_classes = 4;
  cfg.seed = 3;
  return cfg;
}

data::SceneConfig small_scene() {
  data::SceneConfig scene;
  scene.frames = 8;
  scene.height = 16;
  scene.width = 16;
  scene.num_classes = 4;
  return scene;
}

// --- CePattern::hash ---------------------------------------------------------

TEST(CePatternHash, EqualPatternsHashEqualDistinctDiffer) {
  Rng rng(5);
  const ce::CePattern a = ce::CePattern::random(8, 8, rng, 0.5F);
  const ce::CePattern b = a;
  EXPECT_EQ(a.hash(), b.hash());

  std::set<std::uint64_t> hashes;
  hashes.insert(a.hash());
  for (int i = 0; i < 16; ++i) {
    hashes.insert(ce::CePattern::random(8, 8, rng, 0.5F).hash());
  }
  EXPECT_GT(hashes.size(), 16U);  // 17 distinct patterns, no collisions expected

  // Geometry participates: same all-ones bits, different (slots, tile) split.
  EXPECT_NE(ce::CePattern::long_exposure(2, 4).hash(),
            ce::CePattern::long_exposure(4, 2).hash());
}

TEST(CePatternHash, SingleBitFlipChangesHash) {
  ce::CePattern a = ce::CePattern::long_exposure(4, 4);
  ce::CePattern b = a;
  b.set_bit(2, 1, 3, false);
  EXPECT_NE(a.hash(), b.hash());
}

// --- config validation -------------------------------------------------------

TEST(ConfigValidation, RejectsBadValuesWithInvalidArgument) {
  core::SnapPixSystem system(small_system_config());
  {
    runtime::RuntimeConfig cfg;
    cfg.queue_capacity = 0;
    EXPECT_THROW(runtime::StreamingRuntime(system, cfg), std::invalid_argument);
  }
  {
    runtime::RuntimeConfig cfg;
    cfg.batch.max_batch = 0;
    EXPECT_THROW(runtime::StreamingRuntime(system, cfg), std::invalid_argument);
  }
  {
    runtime::RuntimeConfig cfg;
    cfg.batch.max_delay = std::chrono::microseconds(-1);
    EXPECT_THROW(runtime::StreamingRuntime(system, cfg), std::invalid_argument);
  }
  {
    ServerConfig cfg;
    cfg.scheduler_threads = -2;
    EXPECT_THROW(InferenceServer(system, cfg), std::invalid_argument);
  }
  {
    ServerConfig cfg;
    cfg.cache.shards = 0;
    EXPECT_THROW(InferenceServer(system, cfg), std::invalid_argument);
  }
  {
    ServerConfig cfg;
    cfg.cache.capacity_per_shard = 0;
    EXPECT_THROW(InferenceServer(system, cfg), std::invalid_argument);
  }
  // The messages should say what is wrong, not just that something is.
  try {
    BatchPolicy policy;
    policy.max_batch = -3;
    runtime::validate(policy);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("max_batch"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-3"), std::string::npos);
  }
}

// --- shared pattern ownership ------------------------------------------------

TEST(PatternSharing, FleetOnSystemPatternHoldsOneInstance) {
  core::SnapPixSystem system(small_system_config());
  const PatternRef ref = system.pattern_ref();
  runtime::SyntheticCameraSource a(0, small_scene(), ref, 1);
  runtime::SyntheticCameraSource b(1, small_scene(), ref, 2);
  EXPECT_EQ(&a.pattern(), &system.pattern());
  EXPECT_EQ(&b.pattern(), &system.pattern());
  EXPECT_EQ(a.pattern_id(), system.pattern_hash());

  // The sensor camera shares its pattern with its embedded StackedSensor too.
  runtime::SensorCameraSource sensor_cam(2, system.default_sensor_config(), small_scene(),
                                         ref, 3);
  EXPECT_EQ(&sensor_cam.pattern(), &system.pattern());
  EXPECT_EQ(&sensor_cam.sensor().pattern(), &system.pattern());

  // record() propagates the shared handle, not a copy.
  auto replay = runtime::ReplayCameraSource::record(a, 2);
  EXPECT_EQ(&replay->pattern(), &system.pattern());

  // set_pattern is copy-on-write: existing handles keep the old instance.
  Rng rng(7);
  system.set_pattern(ce::CePattern::random(8, 8, rng, 0.5F));
  EXPECT_EQ(&a.pattern(), ref.get());
  EXPECT_NE(&system.pattern(), ref.get());
}

// --- FrameQueue shutdown-while-blocked ---------------------------------------

TEST(FrameQueue, CloseUnblocksConsumerBlockedOnEmptyQueue) {
  FrameQueue queue(4);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
  });
  Frame out;
  EXPECT_FALSE(queue.pop(out));  // blocked on empty, woken by close
  closer.join();
  EXPECT_FALSE(queue.push(std::move(out)));
}

TEST(FrameQueue, CloseUnblocksTimedConsumerBeforeDeadline) {
  FrameQueue queue(4);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
  });
  Frame out;
  const auto t0 = runtime::Clock::now();
  EXPECT_FALSE(queue.pop_until(out, t0 + std::chrono::seconds(10)));
  EXPECT_LT(runtime::Clock::now() - t0, std::chrono::seconds(5));  // woke early
  closer.join();
}

// --- FrameQueue tail stealing ------------------------------------------------

Frame keyed(int camera, std::int64_t sequence, std::uint64_t pattern_id, Task task) {
  Frame frame;
  frame.camera_id = camera;
  frame.sequence = sequence;
  frame.pattern_id = pattern_id;
  frame.task = task;
  frame.coded = Tensor::full(Shape{4, 4}, static_cast<float>(sequence));
  return frame;
}

TEST(FrameQueueSteal, TakesKeyPureTailSuffixInFifoOrder) {
  FrameQueue queue(16);
  ASSERT_TRUE(queue.push(keyed(0, 0, 1, Task::kClassify)));
  ASSERT_TRUE(queue.push(keyed(0, 1, 1, Task::kClassify)));
  ASSERT_TRUE(queue.push(keyed(1, 0, 2, Task::kClassify)));
  ASSERT_TRUE(queue.push(keyed(1, 1, 2, Task::kClassify)));
  ASSERT_TRUE(queue.push(keyed(2, 0, 2, Task::kReconstruct)));  // same pattern, other task

  std::vector<Frame> stolen;
  ASSERT_TRUE(queue.steal_tail(stolen, 8));
  ASSERT_EQ(stolen.size(), 1U);  // the REC frame alone: key purity beats greed
  EXPECT_EQ(stolen[0].task, Task::kReconstruct);

  ASSERT_TRUE(queue.steal_tail(stolen, 8));  // now the pattern-2 classify run
  ASSERT_EQ(stolen.size(), 2U);
  EXPECT_EQ(stolen[0].sequence, 0);  // FIFO inside the stolen batch
  EXPECT_EQ(stolen[1].sequence, 1);
  EXPECT_EQ(stolen[0].pattern_id, 2U);

  EXPECT_EQ(queue.depth(), 2U);  // head run untouched
  Frame out;
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out.pattern_id, 1U);
  EXPECT_EQ(out.sequence, 0);
}

TEST(FrameQueueSteal, RespectsMaxFramesTakingTheNewestRun) {
  FrameQueue queue(16);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.push(keyed(0, i, 1, Task::kClassify)));
  }
  std::vector<Frame> stolen;
  ASSERT_TRUE(queue.steal_tail(stolen, 3));
  ASSERT_EQ(stolen.size(), 3U);  // capped, and taken from the tail...
  EXPECT_EQ(stolen[0].sequence, 2);
  EXPECT_EQ(stolen[2].sequence, 4);
  EXPECT_EQ(queue.depth(), 2U);  // ...leaving the oldest frames for the owner
  ASSERT_TRUE(queue.steal_tail(stolen, 3));  // the shortened run is still stealable
  EXPECT_EQ(stolen.size(), 2U);
  EXPECT_EQ(stolen[0].sequence, 0);
  FrameQueue empty(4);
  EXPECT_FALSE(empty.steal_tail(stolen, 3));
}

// Regression (shutdown race): a steal frees several capacity slots at once,
// so it must wake EVERY producer blocked in push — with a single wake, the
// other producers would keep waiting on capacity that is already free, and
// during shutdown (thieves being the only consumers left draining the queue)
// that is a deadlock.
TEST(FrameQueueSteal, FreesCapacityForAllBlockedProducers) {
  FrameQueue queue(2);
  ASSERT_TRUE(queue.push(keyed(0, 0, 1, Task::kClassify)));
  ASSERT_TRUE(queue.push(keyed(0, 1, 1, Task::kClassify)));
  std::atomic<int> pushed{0};
  std::thread p1([&] {
    EXPECT_TRUE(queue.push(keyed(1, 0, 1, Task::kClassify)));
    pushed.fetch_add(1);
  });
  std::thread p2([&] {
    EXPECT_TRUE(queue.push(keyed(2, 0, 1, Task::kClassify)));
    pushed.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(pushed.load(), 0);  // backpressure holds both
  std::vector<Frame> stolen;
  ASSERT_TRUE(queue.steal_tail(stolen, 8));  // frees both slots in one steal
  EXPECT_EQ(stolen.size(), 2U);
  p1.join();  // both producers must complete — a lost wakeup would hang here
  p2.join();
  EXPECT_EQ(pushed.load(), 2);
  EXPECT_EQ(queue.depth(), 2U);
}

// Regression (shutdown race): a producer blocked in push while shards drain
// the queue via steals must observe shutdown — first the steal lets it
// complete the push, then close() fails it instead of deadlocking.
TEST(FrameQueueSteal, ProducerBlockedInPushObservesShutdownWhileShardsDrain) {
  FrameQueue queue(1);
  ASSERT_TRUE(queue.push(keyed(0, 0, 1, Task::kClassify)));
  std::atomic<bool> first_done{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(keyed(0, 1, 1, Task::kClassify)));  // blocked until a drain
    first_done.store(true);
    EXPECT_FALSE(queue.push(keyed(0, 2, 1, Task::kClassify)));  // blocked until close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(first_done.load());
  std::vector<Frame> stolen;
  ASSERT_TRUE(queue.steal_tail(stolen, 8));  // shard drains; push #2 completes
  while (!first_done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // push #3 now blocked
  queue.close();  // shutdown: the blocked producer must fail, not hang
  producer.join();
  EXPECT_TRUE(queue.exhausted() || queue.depth() > 0);
  Frame out;
  EXPECT_TRUE(queue.pop(out));  // push #2's frame drains even after close
  EXPECT_FALSE(queue.pop(out));
  EXPECT_TRUE(queue.exhausted());
}

// --- BatchAggregator key splitting -------------------------------------------

TEST(BatchAggregator, NeverMixesPatternOrTask) {
  FrameQueue queue(32);
  // Interleaved streams: pattern 1 classify, pattern 2 classify, pattern 1
  // reconstruct. FIFO: A A B A R A B.
  ASSERT_TRUE(queue.push(keyed(0, 0, 1, Task::kClassify)));
  ASSERT_TRUE(queue.push(keyed(0, 1, 1, Task::kClassify)));
  ASSERT_TRUE(queue.push(keyed(1, 0, 2, Task::kClassify)));
  ASSERT_TRUE(queue.push(keyed(0, 2, 1, Task::kClassify)));
  ASSERT_TRUE(queue.push(keyed(2, 0, 1, Task::kReconstruct)));
  ASSERT_TRUE(queue.push(keyed(0, 3, 1, Task::kClassify)));
  ASSERT_TRUE(queue.push(keyed(1, 1, 2, Task::kClassify)));
  queue.close();

  BatchPolicy policy;
  policy.max_batch = 8;
  BatchAggregator aggregator(queue, policy);
  std::vector<Frame> batch;
  std::vector<std::vector<std::int64_t>> batches;
  std::vector<runtime::BatchKey> keys;
  while (aggregator.next_batch(batch)) {
    std::vector<std::int64_t> ids;
    for (const Frame& f : batch) {
      EXPECT_EQ(f.pattern_id, aggregator.last_key().pattern_id);
      EXPECT_EQ(f.task, aggregator.last_key().task);
      ids.push_back(f.camera_id * 100 + f.sequence);
    }
    batches.push_back(std::move(ids));
    keys.push_back(aggregator.last_key());
  }
  // Splits at every key change, preserving FIFO: [A,A] [B] [A] [R] [A] [B].
  ASSERT_EQ(batches.size(), 6U);
  EXPECT_EQ(batches[0], (std::vector<std::int64_t>{0, 1}));
  EXPECT_EQ(batches[1], (std::vector<std::int64_t>{100}));
  EXPECT_EQ(batches[2], (std::vector<std::int64_t>{2}));
  EXPECT_EQ(batches[3], (std::vector<std::int64_t>{200}));
  EXPECT_EQ(keys[3].task, Task::kReconstruct);
  EXPECT_EQ(batches[4], (std::vector<std::int64_t>{3}));
  EXPECT_EQ(batches[5], (std::vector<std::int64_t>{101}));
}

// --- fused REC path ----------------------------------------------------------

TEST(BatchedVitEngine, ReconstructBitIdenticalToTapeFramework) {
  core::SnapPixSystem system(small_system_config());
  runtime::BatchedVitEngine engine(*system.classifier(), *system.reconstructor(), 8);
  ASSERT_TRUE(engine.has_rec_head());
  EXPECT_EQ(engine.frames(), 8);
  Rng rng(31);
  const Tensor batch = Tensor::rand_uniform(Shape{6, 16, 16}, rng);
  const Tensor tape = system.reconstruct_coded(batch);
  const Tensor fused = engine.reconstruct(batch);
  ASSERT_EQ(tape.shape(), fused.shape());
  for (std::size_t i = 0; i < tape.data().size(); ++i) {
    ASSERT_EQ(tape.data()[i], fused.data()[i]) << "voxel " << i << " diverges";
  }
  // The same engine still classifies bit-identically (shared trunk).
  const Tensor tape_logits = system.classify_logits_coded(batch);
  const Tensor fused_logits = engine.classify_logits(batch);
  for (std::size_t i = 0; i < tape_logits.data().size(); ++i) {
    ASSERT_EQ(tape_logits.data()[i], fused_logits.data()[i]);
  }
}

TEST(BatchedVitEngine, ReconstructBatchSizeDoesNotChangeBits) {
  core::SnapPixSystem system(small_system_config());
  runtime::BatchedVitEngine engine(*system.classifier(), *system.reconstructor(), 4);
  Rng rng(37);
  const Tensor batch = Tensor::rand_uniform(Shape{5, 16, 16}, rng);
  const Tensor batched = engine.reconstruct(batch);  // chunked as 4 + 1
  const std::int64_t elems = 8 * 16 * 16;
  for (std::int64_t b = 0; b < 5; ++b) {
    std::vector<float> one(batch.data().begin() + b * 256,
                           batch.data().begin() + (b + 1) * 256);
    const Tensor single =
        engine.reconstruct(Tensor::from_vector(std::move(one), Shape{1, 16, 16}));
    for (std::int64_t i = 0; i < elems; ++i) {
      ASSERT_EQ(single.data()[static_cast<std::size_t>(i)],
                batched.data()[static_cast<std::size_t>(b * elems + i)]);
    }
  }
}

TEST(BatchedVitEngine, ClassifierOnlyEngineRejectsReconstruct) {
  core::SnapPixSystem system(small_system_config());
  runtime::BatchedVitEngine engine(*system.classifier(), 4);
  EXPECT_FALSE(engine.has_rec_head());
  Rng rng(41);
  EXPECT_THROW(engine.reconstruct(Tensor::rand_uniform(Shape{1, 16, 16}, rng)),
               std::runtime_error);
}

// --- PatternNormalizer -------------------------------------------------------

TEST(PatternNormalizer, MatchesLibraryNormalization) {
  Rng rng(43);
  const ce::CePattern pattern = ce::CePattern::random(8, 8, rng, 0.4F);
  runtime::PatternNormalizer normalizer(pattern);
  const Tensor coded = Tensor::rand_uniform(Shape{3, 16, 16}, rng);
  const Tensor expected = ce::normalize_by_exposure(coded, pattern);
  const Tensor actual = normalizer.apply(coded);
  ASSERT_EQ(expected.shape(), actual.shape());
  for (std::size_t i = 0; i < expected.data().size(); ++i) {
    ASSERT_EQ(expected.data()[i], actual.data()[i]);
  }
}

// --- EngineCache -------------------------------------------------------------

std::vector<PatternRef> distinct_patterns(int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<PatternRef> patterns;
  for (int i = 0; i < count; ++i) {
    patterns.push_back(runtime::make_pattern_ref(ce::CePattern::random(8, 8, rng, 0.5F)));
  }
  return patterns;
}

TEST(EngineCache, CountsHitsAndMisses) {
  core::SnapPixSystem system(small_system_config());
  EngineCacheConfig cfg;
  cfg.shards = 2;
  cfg.capacity_per_shard = 4;
  EngineCache cache(cfg, [&system](const ce::CePattern&, runtime::Precision) {
    return std::make_shared<runtime::BatchedVitEngine>(*system.classifier(), 4);
  });
  const auto patterns = distinct_patterns(3, 51);
  for (const auto& p : patterns) {
    cache.resolve(p->hash(), p);  // 3 misses
  }
  for (int lap = 0; lap < 2; ++lap) {
    for (const auto& p : patterns) {
      cache.resolve(p->hash(), p);  // 6 hits
    }
  }
  const auto counters = cache.counters();
  EXPECT_EQ(counters.misses, 3U);
  EXPECT_EQ(counters.hits, 6U);
  EXPECT_EQ(counters.evictions, 0U);
  EXPECT_EQ(cache.resident(), 3U);
  // A hit returns the SAME resident entry, not a rebuild.
  const auto first = cache.resolve(patterns[0]->hash(), patterns[0]);
  const auto second = cache.resolve(patterns[0]->hash(), patterns[0]);
  EXPECT_EQ(first.get(), second.get());
}

TEST(EngineCache, NeverExceedsPerShardCapacityAndEvictsLru) {
  core::SnapPixSystem system(small_system_config());
  EngineCacheConfig cfg;
  cfg.shards = 1;  // single shard makes the LRU order observable
  cfg.capacity_per_shard = 2;
  int builds = 0;
  EngineCache cache(cfg, [&system, &builds](const ce::CePattern&, runtime::Precision) {
    ++builds;
    return std::make_shared<runtime::BatchedVitEngine>(*system.classifier(), 4);
  });
  const auto patterns = distinct_patterns(3, 53);
  cache.resolve(patterns[0]->hash(), patterns[0]);
  cache.resolve(patterns[1]->hash(), patterns[1]);
  EXPECT_EQ(cache.max_shard_occupancy(), 2U);
  cache.resolve(patterns[0]->hash(), patterns[0]);      // touch 0: LRU is now 1
  cache.resolve(patterns[2]->hash(), patterns[2]);      // evicts 1
  EXPECT_EQ(cache.max_shard_occupancy(), 2U);           // capacity held
  EXPECT_EQ(cache.counters().evictions, 1U);
  cache.resolve(patterns[0]->hash(), patterns[0]);      // still resident: hit
  EXPECT_EQ(builds, 3);
  cache.resolve(patterns[1]->hash(), patterns[1]);      // evicted: rebuilt
  EXPECT_EQ(builds, 4);
}

TEST(EngineCache, EvictedPatternRefetchIsBitIdentical) {
  core::SnapPixSystem system(small_system_config());
  EngineCacheConfig cfg;
  cfg.shards = 1;
  cfg.capacity_per_shard = 1;  // every alternation evicts
  EngineCache cache(cfg, [&system](const ce::CePattern&, runtime::Precision) {
    return std::make_shared<runtime::BatchedVitEngine>(*system.classifier(),
                                                       *system.reconstructor(), 4);
  });
  const auto patterns = distinct_patterns(2, 57);
  Rng rng(59);
  const Tensor coded = Tensor::rand_uniform(Shape{2, 16, 16}, rng);

  const auto first = cache.resolve(patterns[0]->hash(), patterns[0]);
  const Tensor logits_before = first->engine->classify_logits(coded);
  const Tensor video_before = first->engine->reconstruct(coded);

  cache.resolve(patterns[1]->hash(), patterns[1]);  // evicts pattern 0
  EXPECT_EQ(cache.counters().evictions, 1U);

  const auto rebuilt = cache.resolve(patterns[0]->hash(), patterns[0]);  // refetch
  EXPECT_NE(first.get(), rebuilt.get());  // genuinely rebuilt, not resurrected
  const Tensor logits_after = rebuilt->engine->classify_logits(coded);
  const Tensor video_after = rebuilt->engine->reconstruct(coded);
  for (std::size_t i = 0; i < logits_before.data().size(); ++i) {
    ASSERT_EQ(logits_before.data()[i], logits_after.data()[i]);
  }
  for (std::size_t i = 0; i < video_before.data().size(); ++i) {
    ASSERT_EQ(video_before.data()[i], video_after.data()[i]);
  }
  EXPECT_EQ(cache.counters().misses, 3U);
}

// --- InferenceServer end-to-end ----------------------------------------------

// A heterogeneous fleet — four distinct patterns, both task heads — must
// produce results bit-identical to the sequential SnapPixSystem paths.
TEST(InferenceServer, HeterogeneousFleetMatchesSequentialPaths) {
  core::SnapPixSystem system(small_system_config());
  const auto patterns = distinct_patterns(4, 61);

  ServerConfig config;
  config.batch.max_batch = 4;
  config.cache.shards = 2;
  config.cache.capacity_per_shard = 2;
  InferenceServer server(system, config);

  const std::int64_t frames_per_camera = 4;
  for (int cam = 0; cam < 6; ++cam) {
    auto camera = std::make_unique<runtime::SyntheticCameraSource>(
        cam, small_scene(), patterns[static_cast<std::size_t>(cam % 4)],
        700 + static_cast<std::uint64_t>(cam));
    if (cam >= 4) {
      camera->set_task(Task::kReconstruct);  // cameras 4, 5 request REC
    }
    server.add_camera(std::move(camera));
  }
  const std::vector<TaskResult> results = server.run(frames_per_camera);
  ASSERT_EQ(results.size(), 24U);

  // Sequential reference: identical cameras, tape-based batch-1.
  NoGradGuard guard;
  std::size_t i = 0;
  for (int cam = 0; cam < 6; ++cam) {
    runtime::SyntheticCameraSource camera(cam, small_scene(),
                                          patterns[static_cast<std::size_t>(cam % 4)],
                                          700 + static_cast<std::uint64_t>(cam));
    for (std::int64_t f = 0; f < frames_per_camera; ++f, ++i) {
      const Frame frame = camera.next_frame();
      const Tensor one = Tensor::from_vector(frame.coded.data(), Shape{1, 16, 16});
      ASSERT_EQ(results[i].camera_id, cam);
      ASSERT_EQ(results[i].sequence, f);
      EXPECT_EQ(results[i].pattern_id, patterns[static_cast<std::size_t>(cam % 4)]->hash());
      if (cam < 4) {
        ASSERT_EQ(results[i].task, Task::kClassify);
        EXPECT_EQ(results[i].predicted, system.classify_coded(one)[0])
            << "camera " << cam << " frame " << f << " diverged";
        EXPECT_EQ(results[i].label, frame.label);
      } else {
        ASSERT_EQ(results[i].task, Task::kReconstruct);
        const Tensor expected = system.reconstruct_coded(one);  // (1, T, H, W)
        const Tensor& actual = results[i].reconstruction;       // (T, H, W)
        ASSERT_EQ(actual.shape(), (Shape{8, 16, 16}));
        for (std::size_t v = 0; v < actual.data().size(); ++v) {
          ASSERT_EQ(expected.data()[v], actual.data()[v])
              << "camera " << cam << " frame " << f << " voxel " << v;
        }
      }
    }
  }

  const auto summary = server.summary();
  EXPECT_EQ(summary.frames, 24U);
  EXPECT_EQ(summary.classify_frames, 16U);
  EXPECT_EQ(summary.reconstruct_frames, 8U);
  EXPECT_EQ(summary.cache_misses + summary.cache_hits, summary.batches);
  EXPECT_GT(summary.cache_misses, 0U);
  ASSERT_NE(server.engine_cache(), nullptr);
  EXPECT_LE(server.engine_cache()->max_shard_occupancy(), config.cache.capacity_per_shard);
}

// --- sharded serving ---------------------------------------------------------

// Builds the heterogeneous AR+REC fleet used by the sharding and framed-
// transport tests: 6 cameras over 4 distinct patterns, the last two
// requesting reconstruction. With `framed`, every camera ships its frames
// through a clean (zero-fault) CSI-2 framed link instead of the in-memory
// hop.
void add_hetero_fleet(InferenceServer& server, const std::vector<PatternRef>& patterns,
                      bool framed = false) {
  for (int cam = 0; cam < 6; ++cam) {
    auto camera = std::make_unique<runtime::SyntheticCameraSource>(
        cam, small_scene(), patterns[static_cast<std::size_t>(cam % 4)],
        700 + static_cast<std::uint64_t>(cam));
    if (cam >= 4) {
      camera->set_task(Task::kReconstruct);
    }
    if (framed) {
      transport::LinkConfig link;
      link.mipi.lanes = 1 + cam % 4;  // mixed lane counts: accounting only
      link.virtual_channel = cam % 4;
      camera->set_framed(link);
    }
    server.add_camera(std::move(camera));
  }
}

void expect_results_identical(const std::vector<TaskResult>& a,
                              const std::vector<TaskResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].camera_id, b[i].camera_id);
    EXPECT_EQ(a[i].sequence, b[i].sequence);
    EXPECT_EQ(a[i].task, b[i].task);
    EXPECT_EQ(a[i].pattern_id, b[i].pattern_id);
    EXPECT_EQ(a[i].predicted, b[i].predicted);
    EXPECT_EQ(a[i].label, b[i].label);
    if (a[i].task != Task::kReconstruct) {
      continue;  // classify results carry no (defined) reconstruction tensor
    }
    ASSERT_EQ(a[i].reconstruction.data().size(), b[i].reconstruction.data().size());
    for (std::size_t v = 0; v < a[i].reconstruction.data().size(); ++v) {
      ASSERT_EQ(a[i].reconstruction.data()[v], b[i].reconstruction.data()[v])
          << "result " << i << " voxel " << v << " diverges";
    }
  }
}

// The tentpole invariant: shard count and steal interleaving never change a
// single output bit. Serve the heterogeneous AR+REC fleet at several shard
// counts and require every run to match the single-consumer one exactly.
TEST(ShardedServer, ShardCountNeverChangesBitsOnHeterogeneousFleet) {
  core::SnapPixSystem system(small_system_config());
  const auto patterns = distinct_patterns(4, 61);

  const auto run_with_shards = [&](std::size_t shards) {
    ServerConfig config;
    config.batch.max_batch = 4;
    config.cache.shards = 2;
    config.cache.capacity_per_shard = 2;
    config.shards = shards;
    InferenceServer server(system, config);
    add_hetero_fleet(server, patterns);
    auto results = server.run(4);
    return std::make_pair(std::move(results), server.summary());
  };

  const auto [single, single_summary] = run_with_shards(1);
  ASSERT_EQ(single.size(), 24U);
  for (const std::size_t shards : {2U, 3U, 5U}) {
    const auto [sharded, summary] = run_with_shards(shards);
    expect_results_identical(single, sharded);

    // Per-shard views exist and aggregate to the run totals.
    ASSERT_EQ(summary.shards.size(), shards);
    std::uint64_t shard_frames = 0;
    std::uint64_t shard_batches = 0;
    std::uint64_t shard_hits = 0;
    std::uint64_t shard_misses = 0;
    for (const auto& view : summary.shards) {
      shard_frames += view.frames;
      shard_batches += view.batches;
      shard_hits += view.cache_hits;
      shard_misses += view.cache_misses;
    }
    EXPECT_EQ(shard_frames, summary.frames);
    EXPECT_EQ(shard_batches, summary.batches);
    EXPECT_EQ(shard_hits, summary.cache_hits);
    EXPECT_EQ(shard_misses, summary.cache_misses);
    EXPECT_EQ(summary.frames, single_summary.frames);
  }
}

// A skewed fleet — one hot camera pouring frames while seven cold cameras
// trickle — must (a) record successful steals (idle shards relieving the hot
// one) and (b) stay bit-identical to the single-consumer run.
TEST(ShardedServer, SkewedFleetStealsWorkAndStaysBitIdentical) {
  core::SnapPixSystem system(small_system_config());
  const auto patterns = distinct_patterns(8, 71);

  // Pre-record every camera's stream so producers are memcpy-fast: the hot
  // camera's queue then stays deep under backpressure, which is what gives
  // idle shards something to steal. Camera 0 is hot, 1..7 are cold.
  const std::vector<std::int64_t> frames_per_camera = {64, 4, 4, 4, 4, 4, 4, 4};
  std::vector<std::vector<Tensor>> coded(8);
  std::vector<std::vector<std::int64_t>> labels(8);
  for (int cam = 0; cam < 8; ++cam) {
    runtime::SyntheticCameraSource source(cam, small_scene(),
                                          patterns[static_cast<std::size_t>(cam)],
                                          900 + static_cast<std::uint64_t>(cam));
    for (std::int64_t f = 0; f < frames_per_camera[static_cast<std::size_t>(cam)]; ++f) {
      Frame frame = source.next_frame();
      coded[static_cast<std::size_t>(cam)].push_back(std::move(frame.coded));
      labels[static_cast<std::size_t>(cam)].push_back(frame.label);
    }
  }

  const auto run_with_shards = [&](std::size_t shards) {
    ServerConfig config;
    config.batch.max_batch = 4;
    config.queue_capacity = 8;  // small: keeps the hot producer under backpressure
    config.shards = shards;
    InferenceServer server(system, config);
    for (int cam = 0; cam < 8; ++cam) {
      server.add_camera(std::make_unique<runtime::ReplayCameraSource>(
          cam, patterns[static_cast<std::size_t>(cam)], coded[static_cast<std::size_t>(cam)],
          labels[static_cast<std::size_t>(cam)]));
    }
    auto results = server.run(frames_per_camera);
    return std::make_pair(std::move(results), server.summary());
  };

  const auto [single, single_summary] = run_with_shards(1);
  ASSERT_EQ(single.size(), 92U);  // 64 + 7 * 4
  EXPECT_EQ(single_summary.steal_attempts, 0U);  // one shard has no one to rob

  const auto [sharded, summary] = run_with_shards(4);
  expect_results_identical(single, sharded);
  EXPECT_GT(summary.steal_attempts, 0U);
  EXPECT_GT(summary.steal_successes, 0U) << "idle shards never relieved the hot one";
  EXPECT_GT(summary.stolen_frames, 0U);
  ASSERT_EQ(summary.shards.size(), 4U);
  const std::uint64_t stolen =
      std::accumulate(summary.shards.begin(), summary.shards.end(), std::uint64_t{0},
                      [](std::uint64_t acc, const runtime::ShardStatsView& v) {
                        return acc + v.stolen_frames;
                      });
  EXPECT_EQ(stolen, summary.stolen_frames);
}

// --- framed transport serving ------------------------------------------------

// The framed-path invariant: at zero fault rate, serializing every frame into
// CSI-2 packets and reassembling it on the far side must not change a single
// served bit — for any shard count.
TEST(FramedServing, ZeroFaultFramedPathBitIdenticalAcrossShards) {
  core::SnapPixSystem system(small_system_config());
  const auto patterns = distinct_patterns(4, 61);

  const auto run_fleet = [&](bool framed, std::size_t shards) {
    ServerConfig config;
    config.batch.max_batch = 4;
    config.cache.shards = 2;
    config.cache.capacity_per_shard = 2;
    config.shards = shards;
    InferenceServer server(system, config);
    add_hetero_fleet(server, patterns, framed);
    auto results = server.run(4);
    return std::make_pair(std::move(results), server.summary());
  };

  const auto [in_memory, in_memory_summary] = run_fleet(false, 1);
  ASSERT_EQ(in_memory.size(), 24U);
  EXPECT_EQ(in_memory_summary.transport.framed_frames, 0U);  // nothing framed

  for (const std::size_t shards : {1U, 3U}) {
    const auto [framed, summary] = run_fleet(true, shards);
    expect_results_identical(in_memory, framed);

    // Every frame crossed the framed link, intact, with nothing dropped.
    EXPECT_EQ(summary.transport.framed_frames, 24U);
    EXPECT_EQ(summary.transport.ok_frames, 24U);
    EXPECT_EQ(summary.transport.crc_errors, 0U);
    EXPECT_EQ(summary.transport.truncated, 0U);
    EXPECT_EQ(summary.transport.missing_lines, 0U);
    EXPECT_EQ(summary.transport.dropped_frames, 0U);
    EXPECT_EQ(summary.transport.retransmits, 0U);
    ASSERT_EQ(summary.transport_cameras.size(), 6U);
    for (const auto& [camera_id, counters] : summary.transport_cameras) {
      EXPECT_EQ(counters.framed_frames, 4U) << "camera " << camera_id;
      EXPECT_EQ(counters.ok_frames, 4U) << "camera " << camera_id;
    }
    // Framed wire accounting carries the float32 payload plus packet
    // overhead: 16 rows of (4 + 64 + 2) + FS/FE, per frame.
    EXPECT_EQ(summary.wire_bytes, 24U * (2 * 4U + 16U * (4U + 64U + 2U)));
  }
}

// At a nonzero drop rate under the kDrop policy, the per-camera dropped_frames
// counters must match the links' injected ground truth EXACTLY, and every
// frame that did survive must serve bit-identically to the in-memory run.
TEST(FramedServing, DropPolicyCountsMatchInjectedDropsExactly) {
  core::SnapPixSystem system(small_system_config());
  const auto patterns = distinct_patterns(3, 83);
  const std::int64_t frames_per_camera = 24;

  // Pre-record each camera's stream so the framed and in-memory runs replay
  // identical payloads.
  std::vector<std::vector<Tensor>> coded(3);
  std::vector<std::vector<std::int64_t>> labels(3);
  for (int cam = 0; cam < 3; ++cam) {
    runtime::SyntheticCameraSource source(cam, small_scene(),
                                          patterns[static_cast<std::size_t>(cam)],
                                          500 + static_cast<std::uint64_t>(cam));
    for (std::int64_t f = 0; f < frames_per_camera; ++f) {
      Frame frame = source.next_frame();
      coded[static_cast<std::size_t>(cam)].push_back(std::move(frame.coded));
      labels[static_cast<std::size_t>(cam)].push_back(frame.label);
    }
  }

  const auto run_fleet = [&](double drop_rate) {
    ServerConfig config;
    config.batch.max_batch = 4;
    config.transport.corrupt = runtime::TransportPolicy::Corrupt::kDrop;
    InferenceServer server(system, config);
    std::vector<const runtime::CameraSource*> cameras;
    for (int cam = 0; cam < 3; ++cam) {
      auto camera = std::make_unique<runtime::ReplayCameraSource>(
          cam, patterns[static_cast<std::size_t>(cam)],
          coded[static_cast<std::size_t>(cam)], labels[static_cast<std::size_t>(cam)]);
      if (cam == 2) {
        camera->set_task(Task::kReconstruct);
      }
      transport::LinkConfig link;
      link.faults.packet_drop_rate = drop_rate;
      link.faults.seed = 40 + static_cast<std::uint64_t>(cam);
      camera->set_framed(link);
      cameras.push_back(camera.get());  // owned by the server; alive until it dies
      server.add_camera(std::move(camera));
    }
    auto results = server.run(frames_per_camera);
    std::vector<transport::FaultStats> injected;
    for (const auto* camera : cameras) {
      injected.push_back(camera->framed_link()->injector().stats());
    }
    return std::make_tuple(std::move(results), server.summary(), std::move(injected));
  };

  const auto [clean, clean_summary, clean_injected] = run_fleet(0.0);
  ASSERT_EQ(clean.size(), 72U);
  EXPECT_EQ(clean_summary.transport.dropped_frames, 0U);

  const auto [lossy, summary, injected] = run_fleet(0.05);
  // Exactness, fleet-wide and per camera: a frame is dropped IFF its link
  // injected at least one fault into it (drop-only faults).
  std::uint64_t injected_total = 0;
  ASSERT_EQ(summary.transport_cameras.size(), 3U);
  for (std::size_t cam = 0; cam < 3; ++cam) {
    const auto& [camera_id, counters] = summary.transport_cameras[cam];
    ASSERT_EQ(camera_id, static_cast<int>(cam));
    EXPECT_EQ(counters.dropped_frames, injected[cam].frames_faulted)
        << "camera " << cam << " drop counter diverges from injected ground truth";
    EXPECT_EQ(counters.framed_frames, static_cast<std::uint64_t>(frames_per_camera));
    EXPECT_EQ(counters.ok_frames + counters.dropped_frames,
              static_cast<std::uint64_t>(frames_per_camera));
    injected_total += injected[cam].frames_faulted;
  }
  EXPECT_GT(injected_total, 0U);  // the drop rate actually bit
  EXPECT_EQ(summary.transport.dropped_frames, injected_total);
  EXPECT_EQ(lossy.size(), 72U - injected_total);
  EXPECT_EQ(summary.frames, 72U - injected_total);

  // Deterministic across runs: same seeds, same drops.
  const auto [lossy2, summary2, injected2] = run_fleet(0.05);
  ASSERT_EQ(lossy2.size(), lossy.size());
  EXPECT_EQ(summary2.transport.dropped_frames, summary.transport.dropped_frames);

  // The frames that survived are bit-identical to their in-memory versions.
  std::size_t clean_idx = 0;
  for (const TaskResult& result : lossy) {
    while (clean_idx < clean.size() &&
           (clean[clean_idx].camera_id != result.camera_id ||
            clean[clean_idx].sequence != result.sequence)) {
      ++clean_idx;  // both runs are (camera, sequence)-sorted: walk forward
    }
    ASSERT_LT(clean_idx, clean.size())
        << "served frame (" << result.camera_id << ", " << result.sequence
        << ") missing from the clean run";
    const TaskResult& expected = clean[clean_idx];
    EXPECT_EQ(result.predicted, expected.predicted);
    if (result.task != Task::kReconstruct) {
      continue;  // classify results carry no (defined) reconstruction tensor
    }
    ASSERT_EQ(result.reconstruction.data().size(), expected.reconstruction.data().size());
    for (std::size_t v = 0; v < result.reconstruction.data().size(); ++v) {
      ASSERT_EQ(result.reconstruction.data()[v], expected.reconstruction.data()[v]);
    }
  }
}

// The kRetransmit policy re-runs corrupt transfers with fresh fault draws:
// with a generous budget every frame eventually lands intact, the full fleet
// serves bit-identically to the clean run, and the retries show up in the
// retransmit counters.
TEST(FramedServing, RetransmitPolicyRecoversEveryFrame) {
  core::SnapPixSystem system(small_system_config());
  const auto patterns = distinct_patterns(2, 89);

  const auto run_fleet = [&](double drop_rate, runtime::TransportPolicy policy) {
    ServerConfig config;
    config.batch.max_batch = 4;
    config.transport = policy;
    InferenceServer server(system, config);
    for (int cam = 0; cam < 2; ++cam) {
      auto camera = std::make_unique<runtime::SyntheticCameraSource>(
          cam, small_scene(), patterns[static_cast<std::size_t>(cam)],
          300 + static_cast<std::uint64_t>(cam));
      transport::LinkConfig link;
      link.faults.packet_drop_rate = drop_rate;
      link.faults.seed = 60 + static_cast<std::uint64_t>(cam);
      camera->set_framed(link);
      server.add_camera(std::move(camera));
    }
    auto results = server.run(16);
    return std::make_pair(std::move(results), server.summary());
  };

  runtime::TransportPolicy retry;
  retry.corrupt = runtime::TransportPolicy::Corrupt::kRetransmit;
  retry.max_retransmits = 64;  // generous: a 2% drop rate recovers in a few tries

  const auto [clean, clean_summary] = run_fleet(0.0, retry);
  const auto [recovered, summary] = run_fleet(0.02, retry);
  ASSERT_EQ(clean.size(), 32U);
  expect_results_identical(clean, recovered);  // nothing lost, nothing changed
  EXPECT_EQ(summary.transport.framed_frames, 32U);
  EXPECT_EQ(summary.transport.ok_frames, 32U);
  EXPECT_EQ(summary.transport.dropped_frames, 0U);
  EXPECT_GT(summary.transport.retransmits, 0U) << "the drop rate never bit — raise it?";
}

// Progressive decode through serving: on an entropy-coded link, classify
// frames travel as the top `classify_codec_planes` bit-planes while
// reconstruct frames ride at full depth — and every served bit must equal an
// in-memory reference that pre-applies the same quantize/truncate transform.
// Truncation changes pixel fidelity, never WHICH frames are served.
TEST(FramedServing, CodecLinkServesProgressiveDepthBitExactly) {
  core::SnapPixSystem system(small_system_config());
  const auto patterns = distinct_patterns(2, 97);
  const std::int64_t frames_per_camera = 12;
  const int depth = 6;

  // Record both cameras' streams once so every arm replays identical payloads.
  std::vector<std::vector<Tensor>> coded(2);
  std::vector<std::vector<std::int64_t>> labels(2);
  for (int cam = 0; cam < 2; ++cam) {
    runtime::SyntheticCameraSource source(cam, small_scene(),
                                          patterns[static_cast<std::size_t>(cam)],
                                          700 + static_cast<std::uint64_t>(cam));
    for (std::int64_t f = 0; f < frames_per_camera; ++f) {
      Frame frame = source.next_frame();
      coded[static_cast<std::size_t>(cam)].push_back(std::move(frame.coded));
      labels[static_cast<std::size_t>(cam)].push_back(frame.label);
    }
  }

  // What the codec wire should deliver for a frame shipped at `planes` depth.
  const auto wire_view = [](const Tensor& frame, int planes) {
    const codec::QuantizedFrame q = codec::quantize_frame(frame);
    const codec::PlaneStream stream = codec::encode_bitplanes(q);
    return codec::dequantize_frame(codec::decode_bitplanes(stream, planes).frame);
  };

  const auto build_fleet = [&](InferenceServer& server, bool codec_framed,
                               const runtime::TransportPolicy* policy,
                               double drop_rate) {
    for (int cam = 0; cam < 2; ++cam) {
      std::vector<Tensor> stream;
      for (const Tensor& frame : coded[static_cast<std::size_t>(cam)]) {
        // The reference fleet replays the wire view in memory: classify
        // truncated at `depth`, reconstruct at full depth.
        stream.push_back(codec_framed ? frame : wire_view(frame, cam == 0 ? depth : 0));
      }
      auto camera = std::make_unique<runtime::ReplayCameraSource>(
          cam, patterns[static_cast<std::size_t>(cam)], std::move(stream),
          labels[static_cast<std::size_t>(cam)]);
      if (cam == 1) {
        camera->set_task(Task::kReconstruct);
      }
      if (codec_framed) {
        transport::LinkConfig link;
        link.codec = true;
        link.faults.packet_drop_rate = drop_rate;
        link.faults.seed = 70 + static_cast<std::uint64_t>(cam);
        camera->set_framed(link);
      }
      server.add_camera(std::move(camera));
      (void)policy;
    }
  };

  const auto run_fleet = [&](bool codec_framed, double drop_rate,
                             const runtime::TransportPolicy* policy) {
    ServerConfig config;
    config.batch.max_batch = 4;
    config.classify_codec_planes = depth;
    if (policy != nullptr) {
      config.transport = *policy;
    }
    InferenceServer server(system, config);
    build_fleet(server, codec_framed, policy, drop_rate);
    auto results = server.run(frames_per_camera);
    return std::make_pair(std::move(results), server.summary());
  };

  const auto [reference, reference_summary] = run_fleet(false, 0.0, nullptr);
  ASSERT_EQ(reference.size(), 24U);
  EXPECT_EQ(reference_summary.transport.codec_frames, 0U);

  const auto [served, summary] = run_fleet(true, 0.0, nullptr);
  expect_results_identical(reference, served);

  // Conservation: every framed frame crossed the codec link intact, the
  // classify camera left depth on the wire, the reconstruct camera did not.
  EXPECT_EQ(summary.transport.framed_frames, 24U);
  EXPECT_EQ(summary.transport.codec_frames, 24U);
  EXPECT_EQ(summary.transport.ok_frames, 24U);
  EXPECT_EQ(summary.transport.dropped_frames, 0U);
  EXPECT_GT(summary.transport.codec_planes_decoded, 0U);
  EXPECT_LT(summary.transport.codec_planes_decoded, summary.transport.codec_planes_total);
  ASSERT_EQ(summary.transport_cameras.size(), 2U);
  for (const auto& [camera_id, counters] : summary.transport_cameras) {
    EXPECT_EQ(counters.codec_frames, static_cast<std::uint64_t>(frames_per_camera))
        << "camera " << camera_id;
    if (camera_id == 1) {  // reconstruct: full depth, nothing truncated
      EXPECT_EQ(counters.codec_planes_decoded, counters.codec_planes_total);
    } else {  // classify: capped at `depth` planes per frame
      EXPECT_LE(counters.codec_planes_decoded,
                static_cast<std::uint64_t>(frames_per_camera) * depth);
      EXPECT_LT(counters.codec_planes_decoded, counters.codec_planes_total);
    }
  }

  // Under kRetransmit on a lossy link, recovery must restore the exact same
  // served bits and the counters must stay conserved (ok + dropped == framed).
  runtime::TransportPolicy retry;
  retry.corrupt = runtime::TransportPolicy::Corrupt::kRetransmit;
  retry.max_retransmits = 64;
  const auto [recovered, lossy_summary] = run_fleet(true, 0.02, &retry);
  expect_results_identical(reference, recovered);
  EXPECT_EQ(lossy_summary.transport.framed_frames, 24U);
  EXPECT_EQ(lossy_summary.transport.codec_frames, 24U);
  EXPECT_EQ(lossy_summary.transport.ok_frames + lossy_summary.transport.dropped_frames,
            24U);
  EXPECT_EQ(lossy_summary.transport.dropped_frames, 0U);
  EXPECT_GT(lossy_summary.transport.retransmits, 0U)
      << "the drop rate never bit — raise it?";
  EXPECT_EQ(lossy_summary.transport.codec_planes_decoded,
            summary.transport.codec_planes_decoded);
}

TEST(FramedServing, ValidatesTransportPolicy) {
  core::SnapPixSystem system(small_system_config());
  ServerConfig cfg;
  cfg.transport.max_retransmits = -1;
  EXPECT_THROW(InferenceServer(system, cfg), std::invalid_argument);
}

TEST(ShardedServer, ValidatesShardConfiguration) {
  core::SnapPixSystem system(small_system_config());
  {
    ServerConfig cfg;
    cfg.shards = 0;
    EXPECT_THROW(InferenceServer(system, cfg), std::invalid_argument);
  }
  {
    // The tape framework serializes on one tape: no concurrent consumers.
    ServerConfig cfg;
    cfg.shards = 2;
    cfg.backend = runtime::InferenceBackend::kTapeFramework;
    EXPECT_THROW(InferenceServer(system, cfg), std::invalid_argument);
  }
  {
    ServerConfig cfg;
    cfg.steal_poll = std::chrono::microseconds(0);
    EXPECT_THROW(InferenceServer(system, cfg), std::invalid_argument);
  }
  {
    // Per-camera frame counts must be parallel to the fleet and positive.
    InferenceServer server(system, {});
    server.add_camera(std::make_unique<runtime::SyntheticCameraSource>(
        0, small_scene(), system.pattern_ref(), 1));
    EXPECT_THROW(server.run(std::vector<std::int64_t>{1, 1}), std::runtime_error);
  }
}

// The tape backend serves the same fleet without a cache and stays
// bit-identical to the fused path.
TEST(InferenceServer, TapeBackendMatchesFusedBackend) {
  core::SnapPixSystem system(small_system_config());
  const auto patterns = distinct_patterns(2, 67);

  const auto run_fleet = [&](runtime::InferenceBackend backend) {
    ServerConfig config;
    config.batch.max_batch = 4;
    config.backend = backend;
    InferenceServer server(system, config);
    for (int cam = 0; cam < 3; ++cam) {
      auto camera = std::make_unique<runtime::SyntheticCameraSource>(
          cam, small_scene(), patterns[static_cast<std::size_t>(cam % 2)],
          800 + static_cast<std::uint64_t>(cam));
      if (cam == 2) {
        camera->set_task(Task::kReconstruct);
      }
      server.add_camera(std::move(camera));
    }
    return server.run(3);
  };

  const auto fused = run_fleet(runtime::InferenceBackend::kFusedEngine);
  const auto tape = run_fleet(runtime::InferenceBackend::kTapeFramework);
  ASSERT_EQ(fused.size(), tape.size());
  for (std::size_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused[i].camera_id, tape[i].camera_id);
    EXPECT_EQ(fused[i].sequence, tape[i].sequence);
    EXPECT_EQ(fused[i].task, tape[i].task);
    EXPECT_EQ(fused[i].predicted, tape[i].predicted);
    if (fused[i].task == Task::kReconstruct) {
      ASSERT_EQ(fused[i].reconstruction.data().size(), tape[i].reconstruction.data().size());
      for (std::size_t v = 0; v < fused[i].reconstruction.data().size(); ++v) {
        ASSERT_EQ(fused[i].reconstruction.data()[v], tape[i].reconstruction.data()[v]);
      }
    }
  }
}

TEST(InferenceServer, RunIsOneShot) {
  core::SnapPixSystem system(small_system_config());
  InferenceServer server(system, {});
  server.add_camera(std::make_unique<runtime::SyntheticCameraSource>(
      0, small_scene(), system.pattern_ref(), 1));
  (void)server.run(1);
  EXPECT_THROW(server.run(1), std::runtime_error);
}

// StreamingRuntime remains a faithful classification facade over the server.
TEST(StreamingRuntimeFacade, MatchesServerClassifyResults) {
  core::SnapPixSystem system(small_system_config());
  runtime::RuntimeConfig config;
  config.batch.max_batch = 4;
  runtime::StreamingRuntime rt(system, config);
  for (int cam = 0; cam < 2; ++cam) {
    rt.add_camera(std::make_unique<runtime::SyntheticCameraSource>(
        cam, small_scene(), system.pattern_ref(), 40 + static_cast<std::uint64_t>(cam)));
  }
  const auto results = rt.run(3);
  ASSERT_EQ(results.size(), 6U);

  ServerConfig server_config;
  server_config.batch.max_batch = 4;
  InferenceServer server(system, server_config);
  for (int cam = 0; cam < 2; ++cam) {
    server.add_camera(std::make_unique<runtime::SyntheticCameraSource>(
        cam, small_scene(), system.pattern_ref(), 40 + static_cast<std::uint64_t>(cam)));
  }
  const auto typed = server.run(3);
  ASSERT_EQ(typed.size(), results.size());
  for (std::size_t i = 0; i < typed.size(); ++i) {
    EXPECT_EQ(results[i].camera_id, typed[i].camera_id);
    EXPECT_EQ(results[i].sequence, typed[i].sequence);
    EXPECT_EQ(results[i].predicted, typed[i].predicted);
    EXPECT_EQ(results[i].label, typed[i].label);
  }
}

TEST(StreamingRuntimeFacade, RejectsReconstructionCameras) {
  core::SnapPixSystem system(small_system_config());
  runtime::StreamingRuntime rt(system, {});
  auto camera = std::make_unique<runtime::SyntheticCameraSource>(0, small_scene(),
                                                                 system.pattern_ref(), 1);
  camera->set_task(Task::kReconstruct);
  EXPECT_THROW(rt.add_camera(std::move(camera)), std::runtime_error);
}

}  // namespace
}  // namespace snappix
