// Tests for the nn layer library: shapes, gradients, module plumbing, and
// checkpoint round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "gradcheck.h"
#include "nn/attention.h"
#include "nn/embed.h"
#include "nn/layers.h"
#include "nn/svconv.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace snappix {
namespace {

using nn::Conv2d;
using nn::Conv3d;
using nn::LayerNorm;
using nn::Linear;
using nn::Mlp;
using nn::MultiHeadAttention;
using nn::PatchEmbed;
using nn::ShiftVariantConv2d;
using nn::TransformerBlock;
using nn::TubeletEmbed;
using testing::max_grad_error;

TEST(Linear, ForwardShapeAndBias) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  const Tensor x = Tensor::randn(Shape{2, 4}, rng);
  const Tensor y = layer.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  const Tensor x3 = Tensor::randn(Shape{2, 5, 4}, rng);
  EXPECT_EQ(layer.forward(x3).shape(), (Shape{2, 5, 3}));
  EXPECT_THROW(layer.forward(Tensor::zeros(Shape{2, 5})), std::runtime_error);
}

TEST(Linear, ParameterCount) {
  Rng rng(2);
  Linear with_bias(8, 16, rng);
  EXPECT_EQ(with_bias.parameter_count(), 8 * 16 + 16);
  Linear no_bias(8, 16, rng, /*with_bias=*/false);
  EXPECT_EQ(no_bias.parameter_count(), 8 * 16);
}

TEST(Linear, Gradcheck) {
  Rng rng(3);
  Linear layer(3, 2, rng);
  Tensor x = Tensor::randn(Shape{4, 3}, rng, 1.0F, true);
  auto params = layer.parameters();
  std::vector<Tensor> leaves = {x};
  leaves.insert(leaves.end(), params.begin(), params.end());
  EXPECT_LT(max_grad_error([&] { return sum_all(square(layer.forward(x))); }, leaves), 5e-2F);
}

TEST(LayerNormTest, NormalizesLastAxis) {
  Rng rng(4);
  LayerNorm norm(8);
  const Tensor x = Tensor::randn(Shape{3, 8}, rng, 5.0F);
  const Tensor y = norm.forward(x);
  // Fresh gamma=1, beta=0: output rows have ~zero mean and ~unit variance.
  const Tensor row_mean = mean(y, -1);
  const Tensor row_var = mean(square(sub(y, mean(y, -1, true))), -1);
  for (const float m : row_mean.data()) {
    EXPECT_NEAR(m, 0.0F, 1e-4F);
  }
  for (const float v : row_var.data()) {
    EXPECT_NEAR(v, 1.0F, 1e-2F);
  }
}

TEST(LayerNormTest, Gradcheck) {
  Rng rng(5);
  LayerNorm norm(4);
  Tensor x = Tensor::randn(Shape{3, 4}, rng, 1.0F, true);
  Tensor w = Tensor::randn(Shape{3, 4}, rng);
  auto params = norm.parameters();
  std::vector<Tensor> leaves = {x};
  leaves.insert(leaves.end(), params.begin(), params.end());
  EXPECT_LT(max_grad_error([&] { return sum_all(mul(norm.forward(x), w)); }, leaves), 5e-2F);
}

TEST(MlpTest, ForwardAndGradcheck) {
  Rng rng(6);
  Mlp mlp(4, 8, rng);
  Tensor x = Tensor::randn(Shape{2, 4}, rng, 1.0F, true);
  EXPECT_EQ(mlp.forward(x).shape(), (Shape{2, 4}));
  EXPECT_LT(max_grad_error([&] { return sum_all(square(mlp.forward(x))); }, {x}), 5e-2F);
}

TEST(Attention, OutputShape) {
  Rng rng(7);
  MultiHeadAttention attn(16, 4, rng);
  const Tensor x = Tensor::randn(Shape{2, 9, 16}, rng);
  EXPECT_EQ(attn.forward(x).shape(), (Shape{2, 9, 16}));
}

TEST(Attention, RejectsBadConfig) {
  Rng rng(8);
  EXPECT_THROW(MultiHeadAttention(10, 3, rng), std::runtime_error);
}

TEST(Attention, Gradcheck) {
  Rng rng(9);
  MultiHeadAttention attn(8, 2, rng);
  Tensor x = Tensor::randn(Shape{1, 4, 8}, rng, 0.7F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(square(attn.forward(x))); }, {x}), 5e-2F);
}

TEST(Attention, PermutationEquivariantWithoutPosEmbed) {
  Rng rng(10);
  MultiHeadAttention attn(8, 2, rng);
  const Tensor x = Tensor::randn(Shape{1, 5, 8}, rng);
  const Tensor y = attn.forward(x);
  // Reverse the token order; output should be the reversed original output.
  std::vector<std::int64_t> reversed{4, 3, 2, 1, 0};
  const Tensor xr = index_select(x, 1, reversed);
  const Tensor yr = attn.forward(xr);
  EXPECT_TRUE(allclose(yr, index_select(y, 1, reversed), 1e-4F, 1e-3F));
}

TEST(TransformerBlockTest, ForwardShapeAndGrad) {
  Rng rng(11);
  TransformerBlock block(8, 2, 2.0F, rng);
  Tensor x = Tensor::randn(Shape{2, 4, 8}, rng, 0.5F, true);
  EXPECT_EQ(block.forward(x).shape(), (Shape{2, 4, 8}));
  EXPECT_LT(max_grad_error([&] { return mean_all(square(block.forward(x))); }, {x}), 5e-2F);
}

TEST(Patchify, RoundTripImage) {
  Rng rng(12);
  const Tensor img = Tensor::randn(Shape{2, 8, 8}, rng);
  const Tensor patches = nn::patchify_image(img, 4);
  EXPECT_EQ(patches.shape(), (Shape{2, 4, 16}));
  const Tensor back = nn::unpatchify_image(patches, 4, 8, 8);
  EXPECT_TRUE(allclose(back, img));
}

TEST(Patchify, RoundTripVideo) {
  Rng rng(13);
  const Tensor video = Tensor::randn(Shape{2, 4, 8, 8}, rng);
  const Tensor patches = nn::patchify_video(video, 4);
  EXPECT_EQ(patches.shape(), (Shape{2, 4, 64}));
  const Tensor back = nn::unpatchify_video(patches, 4, 4, 8, 8);
  EXPECT_TRUE(allclose(back, video));
}

TEST(Patchify, PatchContentsAreSpatiallyCoherent) {
  // Build an image whose value encodes its patch id; every row of the patch
  // matrix must then be constant.
  const int patch = 4;
  std::vector<float> values(8 * 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      values[static_cast<std::size_t>(y * 8 + x)] =
          static_cast<float>((y / patch) * 2 + (x / patch));
    }
  }
  const Tensor img = Tensor::from_vector(values, Shape{1, 8, 8});
  const Tensor patches = nn::patchify_image(img, patch);
  for (std::int64_t n = 0; n < 4; ++n) {
    for (std::int64_t k = 0; k < patch * patch; ++k) {
      EXPECT_EQ(patches.at({0, n, k}), static_cast<float>(n));
    }
  }
}

TEST(PatchEmbedTest, TokenShape) {
  Rng rng(14);
  PatchEmbed embed(4, 12, rng);
  const Tensor img = Tensor::randn(Shape{3, 8, 12}, rng);
  EXPECT_EQ(embed.forward(img).shape(), (Shape{3, 6, 12}));
  EXPECT_THROW(embed.forward(Tensor::zeros(Shape{1, 7, 8})), std::runtime_error);
}

TEST(TubeletEmbedTest, TokenShape) {
  Rng rng(15);
  TubeletEmbed embed(2, 4, 10, rng);
  const Tensor video = Tensor::randn(Shape{2, 4, 8, 8}, rng);
  // tokens = (4/2) * (8/4) * (8/4) = 8
  EXPECT_EQ(embed.forward(video).shape(), (Shape{2, 8, 10}));
  EXPECT_THROW(embed.forward(Tensor::zeros(Shape{1, 3, 8, 8})), std::runtime_error);
}

TEST(Conv2dLayer, ShapeAndGrad) {
  Rng rng(16);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  Tensor x = Tensor::randn(Shape{1, 2, 6, 6}, rng, 1.0F, true);
  EXPECT_EQ(conv.forward(x).shape(), (Shape{1, 3, 6, 6}));
  EXPECT_LT(max_grad_error([&] { return mean_all(square(conv.forward(x))); }, {x}), 5e-2F);
}

TEST(Conv3dLayer, Shape) {
  Rng rng(17);
  Conv3d conv(1, 4, 3, 3, 1, 2, 1, 1, rng);
  const Tensor x = Tensor::randn(Shape{2, 1, 8, 8, 8}, rng);
  EXPECT_EQ(conv.forward(x).shape(), (Shape{2, 4, 8, 4, 4}));
}

TEST(SvConv, MatchesConv2dWhenKernelsIdentical) {
  Rng rng(18);
  const int tile = 2;
  // One shared kernel replicated across positions must equal plain conv2d.
  const Tensor base = Tensor::randn(Shape{3, 2, 3, 3}, rng, 0.5F);
  std::vector<float> svw;
  for (int p = 0; p < tile * tile; ++p) {
    svw.insert(svw.end(), base.data().begin(), base.data().end());
  }
  const Tensor weight = Tensor::from_vector(svw, Shape{4, 3, 2, 3, 3});
  const Tensor bias = Tensor::randn(Shape{3}, rng);
  const Tensor x = Tensor::randn(Shape{2, 2, 6, 6}, rng);
  const Tensor y_svc = nn::shift_variant_conv2d(x, weight, bias, tile);
  const Tensor y_conv = conv2d(x, base, bias, 1, 1);
  EXPECT_TRUE(allclose(y_svc, y_conv, 1e-4F, 1e-3F));
}

TEST(SvConv, UsesPositionDependentKernels) {
  Rng rng(19);
  const int tile = 2;
  // Each position's kernel is a distinct scalar: output = scalar * input.
  Tensor weight = Tensor::zeros(Shape{4, 1, 1, 1, 1});
  for (int p = 0; p < 4; ++p) {
    weight.set_at({p, 0, 0, 0, 0}, static_cast<float>(p + 1));
  }
  const Tensor x = Tensor::ones(Shape{1, 1, 4, 4});
  const Tensor y = nn::shift_variant_conv2d(x, weight, Tensor(), tile);
  for (std::int64_t yy = 0; yy < 4; ++yy) {
    for (std::int64_t xx = 0; xx < 4; ++xx) {
      const float expected = static_cast<float>((yy % tile) * tile + (xx % tile) + 1);
      EXPECT_EQ(y.at({0, 0, yy, xx}), expected);
    }
  }
}

TEST(SvConv, Gradcheck) {
  Rng rng(20);
  Tensor x = Tensor::randn(Shape{1, 1, 4, 4}, rng, 1.0F, true);
  Tensor w = Tensor::randn(Shape{4, 2, 1, 3, 3}, rng, 0.5F, true);
  Tensor b = Tensor::randn(Shape{2}, rng, 0.5F, true);
  EXPECT_LT(max_grad_error(
                [&] { return sum_all(square(nn::shift_variant_conv2d(x, w, b, 2))); }, {x, w, b}),
            5e-2F);
}

TEST(SvConv, LayerShape) {
  Rng rng(21);
  ShiftVariantConv2d layer(1, 4, 3, 4, rng);
  const Tensor x = Tensor::randn(Shape{2, 1, 8, 8}, rng);
  EXPECT_EQ(layer.forward(x).shape(), (Shape{2, 4, 8, 8}));
}

TEST(ModuleTest, NamedParametersAreHierarchical) {
  Rng rng(22);
  TransformerBlock block(8, 2, 2.0F, rng);
  const auto named = block.named_parameters();
  bool found_qkv = false;
  for (const auto& [name, tensor] : named) {
    (void)tensor;
    if (name == "attn.qkv.weight") {
      found_qkv = true;
    }
  }
  EXPECT_TRUE(found_qkv);
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(23);
  Linear layer(3, 3, rng);
  Tensor x = Tensor::randn(Shape{2, 3}, rng);
  sum_all(square(layer.forward(x))).backward();
  bool any_nonzero = false;
  for (const auto& p : layer.parameters()) {
    for (const float g : std::vector<float>(p.grad().data())) {
      any_nonzero |= g != 0.0F;
    }
  }
  EXPECT_TRUE(any_nonzero);
  layer.zero_grad();
  for (const auto& p : layer.parameters()) {
    for (const float g : std::vector<float>(p.grad().data())) {
      EXPECT_EQ(g, 0.0F);
    }
  }
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  Rng rng(24);
  const std::string path =
      (std::filesystem::temp_directory_path() / "snappix_module_test.bin").string();
  Mlp a(4, 8, rng);
  a.save(path);
  Mlp b(4, 8, rng);  // different random init
  const Tensor x = Tensor::randn(Shape{2, 4}, rng);
  EXPECT_FALSE(allclose(a.forward(x), b.forward(x)));
  b.load(path);
  EXPECT_TRUE(allclose(a.forward(x), b.forward(x)));
  std::remove(path.c_str());
}

TEST(ModuleTest, LoadRejectsWrongArchitecture) {
  Rng rng(25);
  const std::string path =
      (std::filesystem::temp_directory_path() / "snappix_module_test2.bin").string();
  Mlp a(4, 8, rng);
  a.save(path);
  Mlp wrong(4, 16, rng);
  EXPECT_THROW(wrong.load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ModuleTest, TrainingFlagPropagates) {
  Rng rng(26);
  TransformerBlock block(8, 2, 2.0F, rng);
  EXPECT_TRUE(block.training());
  block.set_training(false);
  EXPECT_FALSE(block.training());
}

}  // namespace
}  // namespace snappix
