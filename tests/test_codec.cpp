// Tests for the JPEG-like DCT codec (the digital-compression baseline of the
// paper's Related Work section) and the conventional-capture sensor mode.
#include <gtest/gtest.h>

#include <climits>
#include <cmath>

#include "ce/pattern.h"
#include "codec/dct.h"
#include "data/synthetic.h"
#include "energy/model.h"
#include "sensor/sensor.h"
#include "util/rng.h"

namespace snappix {
namespace {

using codec::dct_8x8;
using codec::estimate_block_bits;
using codec::idct_8x8;
using codec::jpeg_like_compress;
using codec::JpegLikeConfig;
using codec::kBlock;
using codec::magnitude_bits;

TEST(Dct, RoundTripIsIdentity) {
  Rng rng(1);
  float input[kBlock * kBlock];
  float coeffs[kBlock * kBlock];
  float output[kBlock * kBlock];
  for (auto& v : input) {
    v = rng.uniform(-128.0F, 128.0F);
  }
  dct_8x8(input, coeffs);
  idct_8x8(coeffs, output);
  for (int i = 0; i < kBlock * kBlock; ++i) {
    EXPECT_NEAR(output[i], input[i], 1e-2F);
  }
}

TEST(Dct, ConstantBlockHasOnlyDcCoefficient) {
  float input[kBlock * kBlock];
  float coeffs[kBlock * kBlock];
  for (auto& v : input) {
    v = 42.0F;
  }
  dct_8x8(input, coeffs);
  // DC = 8 * value with orthonormal scaling.
  EXPECT_NEAR(coeffs[0], 42.0F * 8.0F, 1e-2F);
  for (int i = 1; i < kBlock * kBlock; ++i) {
    EXPECT_NEAR(coeffs[i], 0.0F, 1e-3F);
  }
}

TEST(Dct, ParsevalEnergyPreserved) {
  Rng rng(2);
  float input[kBlock * kBlock];
  float coeffs[kBlock * kBlock];
  for (auto& v : input) {
    v = rng.normal(0.0F, 30.0F);
  }
  dct_8x8(input, coeffs);
  double in_energy = 0.0;
  double out_energy = 0.0;
  for (int i = 0; i < kBlock * kBlock; ++i) {
    in_energy += static_cast<double>(input[i]) * input[i];
    out_energy += static_cast<double>(coeffs[i]) * coeffs[i];
  }
  EXPECT_NEAR(out_energy / in_energy, 1.0, 1e-4);
}

TEST(JpegLike, SmoothImageCompressesWell) {
  // A smooth gradient image compresses far below 8 bits/pixel with good PSNR.
  std::vector<float> values(32 * 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      values[static_cast<std::size_t>(y * 32 + x)] =
          0.5F + 0.4F * std::sin(static_cast<float>(x) * 0.2F) *
                     std::cos(static_cast<float>(y) * 0.2F);
    }
  }
  const Tensor image = Tensor::from_vector(values, Shape{32, 32});
  const auto result = jpeg_like_compress(image, JpegLikeConfig{.quality = 75});
  EXPECT_GT(result.compression_ratio, 4.0);
  EXPECT_GT(result.psnr_db, 30.0F);
  EXPECT_EQ(result.reconstruction.shape(), image.shape());
}

TEST(JpegLike, QualityTradesSizeForPsnr) {
  Rng rng(3);
  data::SceneConfig scene;
  scene.frames = 1;
  const data::SyntheticVideoGenerator gen(scene);
  const auto sample = gen.sample(rng, 0);
  const Tensor image = Tensor::from_vector(
      std::vector<float>(sample.video.data().begin(), sample.video.data().begin() + 32 * 32),
      Shape{32, 32});
  const auto low = jpeg_like_compress(image, JpegLikeConfig{.quality = 10});
  const auto high = jpeg_like_compress(image, JpegLikeConfig{.quality = 90});
  EXPECT_GT(low.compression_ratio, high.compression_ratio);
  EXPECT_LT(low.psnr_db, high.psnr_db);
}

TEST(JpegLike, InvalidInputsThrow) {
  EXPECT_THROW(jpeg_like_compress(Tensor::zeros(Shape{30, 32})), std::runtime_error);
  EXPECT_THROW(jpeg_like_compress(Tensor::zeros(Shape{32, 32}), JpegLikeConfig{.quality = 0}),
               std::runtime_error);
}

TEST(JpegLike, DigitalCompressionEnergyDwarfsSensing) {
  // The Related Work argument: ~nJ/pixel digital compression vs 220 pJ/pixel
  // sensing — compression alone costs ~5x the whole sensing pipeline.
  const energy::EnergyModel model;
  const double sensing =
      (model.readout_pj_per_pixel() + model.analog_pj_per_pixel()) * 1e-12;
  const double compression = codec::digital_compression_energy_j(1);
  EXPECT_GT(compression, 4.0 * sensing);
}

// Property sweep: round-trip PSNR stays reasonable across qualities.
class JpegQualitySweep : public ::testing::TestWithParam<int> {};

TEST_P(JpegQualitySweep, RoundTripPsnrAboveFloor) {
  Rng rng(4);
  const Tensor image = Tensor::rand_uniform(Shape{16, 16}, rng, 0.2F, 0.8F);
  const auto result = jpeg_like_compress(image, JpegLikeConfig{.quality = GetParam()});
  EXPECT_GT(result.psnr_db, 15.0F);
  EXPECT_GT(result.compressed_bits, 0);
}

INSTANTIATE_TEST_SUITE_P(Qualities, JpegQualitySweep, ::testing::Values(5, 25, 50, 75, 95));

// --- entropy size estimator ---------------------------------------------------

TEST(MagnitudeBits, MatchesJpegSizeCategories) {
  EXPECT_EQ(magnitude_bits(0), 0);
  EXPECT_EQ(magnitude_bits(1), 1);
  EXPECT_EQ(magnitude_bits(-1), 1);
  EXPECT_EQ(magnitude_bits(2), 2);
  EXPECT_EQ(magnitude_bits(-3), 2);
  EXPECT_EQ(magnitude_bits(255), 8);
  EXPECT_EQ(magnitude_bits(256), 9);
  EXPECT_EQ(magnitude_bits(-(1 << 30)), 31);
}

TEST(MagnitudeBits, ExtremeIntsAreWellDefined) {
  // std::abs(INT_MIN) is UB; the unsigned-magnitude implementation must
  // report 32 bits for 0x80000000 instead. Regression for the UBSan finding.
  EXPECT_EQ(magnitude_bits(INT_MAX), 31);
  EXPECT_EQ(magnitude_bits(INT_MIN), 32);
  EXPECT_EQ(magnitude_bits(INT_MIN + 1), 31);
}

TEST(EstimateBlockBits, GoldenAllZeroBlock) {
  int block[kBlock * kBlock] = {};
  // DC differential of 0 costs the 4-bit category code alone; the all-zero
  // AC tail is one EOB symbol.
  EXPECT_EQ(estimate_block_bits(block, 0), 4 + 4);
  // A nonzero predictor makes the DC difference pay magnitude bits.
  EXPECT_EQ(estimate_block_bits(block, -5), 4 + 3 + 4);
}

TEST(EstimateBlockBits, GoldenDcDifferential) {
  int block[kBlock * kBlock] = {};
  block[0] = 5;
  // diff = 5 - 2 = 3 -> category 2; EOB closes the empty AC tail.
  EXPECT_EQ(estimate_block_bits(block, 2), 4 + 2 + 4);
  // Identical predictor -> zero diff, category code only.
  EXPECT_EQ(estimate_block_bits(block, 5), 4 + 4);
}

TEST(EstimateBlockBits, GoldenEarlyAcCoefficient) {
  int block[kBlock * kBlock] = {};
  block[1] = -3;  // zigzag position 1 is natural index 1
  // DC 4 bits, AC run/size 4 + 2 magnitude bits, then 62 trailing zeros: EOB.
  EXPECT_EQ(estimate_block_bits(block, 0), 4 + (4 + 2) + 4);
}

TEST(EstimateBlockBits, GoldenZrlRunsWithoutEob) {
  int block[kBlock * kBlock] = {};
  block[63] = 1;  // the last zigzag position: 62 zeros precede it
  // 62 zeros = 3 full ZRL runs of 16 (11 bits each) + 14 leftover zeros
  // folded into the run/size code; the nonzero is the final coefficient so
  // no EOB is charged.
  EXPECT_EQ(estimate_block_bits(block, 0), 4 + 3 * 11 + (4 + 1));
}

// --- conventional capture mode ------------------------------------------------

TEST(ConventionalCapture, MatchesSceneFrames) {
  Rng rng(5);
  sensor::SensorConfig cfg;
  cfg.height = 8;
  cfg.width = 8;
  cfg.adc.full_scale = cfg.electrons_per_unit;  // one slot spans the range
  cfg.pixel.full_well_electrons = cfg.adc.full_scale;
  sensor::StackedSensor sensor(cfg, ce::CePattern::long_exposure(4, 2));
  const Tensor scene = Tensor::rand_uniform(Shape{4, 8, 8}, rng);
  const Tensor frames = sensor.capture_conventional(scene, rng);
  EXPECT_EQ(frames.shape(), (Shape{4, 8, 8}));
  // Each frame should be the quantized scene frame.
  for (std::size_t i = 0; i < frames.data().size(); ++i) {
    const float expected = std::round(scene.data()[i] * 255.0F);
    EXPECT_NEAR(frames.data()[i], expected, 1.0F);
  }
}

TEST(ConventionalCapture, ReadoutCostIsTTimesCodedCapture) {
  // The crux of the paper: conventional capture pays T read-outs and T
  // frame transmissions; CE capture pays exactly one.
  Rng rng(6);
  sensor::SensorConfig cfg;
  cfg.height = 16;
  cfg.width = 16;
  cfg.adc.full_scale = cfg.electrons_per_unit * 8;
  cfg.pixel.full_well_electrons = cfg.adc.full_scale;
  sensor::StackedSensor sensor(cfg, ce::CePattern::long_exposure(8, 4));
  const Tensor scene = Tensor::rand_uniform(Shape{8, 16, 16}, rng);

  (void)sensor.capture(scene, rng);
  const auto coded_adc = sensor.stats().adc_conversions;
  const auto coded_bytes = sensor.stats().mipi_bytes;

  (void)sensor.capture_conventional(scene, rng);
  const auto conv_adc = sensor.stats().adc_conversions;
  const auto conv_bytes = sensor.stats().mipi_bytes;

  EXPECT_EQ(conv_adc, 8U * coded_adc);
  EXPECT_EQ(conv_bytes, 8U * coded_bytes);
}

TEST(ConventionalCapture, WrongGeometryThrows) {
  Rng rng(7);
  sensor::SensorConfig cfg;
  cfg.height = 8;
  cfg.width = 8;
  sensor::StackedSensor sensor(cfg, ce::CePattern::long_exposure(4, 2));
  EXPECT_THROW(sensor.capture_conventional(Tensor::zeros(Shape{4, 4, 4}), rng),
               std::runtime_error);
}

}  // namespace
}  // namespace snappix
