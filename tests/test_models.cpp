// Tests for the model zoo: SNAPPIX ViT variants, MAE pre-training wrapper,
// and the SVC2D / C3D / VideoViT baselines.
#include <gtest/gtest.h>

#include "models/baselines.h"
#include "models/mae.h"
#include "models/vit.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace snappix {
namespace {

using models::C3dModel;
using models::CodedMae;
using models::MaeConfig;
using models::SnapPixClassifier;
using models::SnapPixReconstructor;
using models::Svc2dModel;
using models::VideoViT;
using models::VideoViTConfig;
using models::ViTConfig;
using models::ViTEncoder;

ViTConfig tiny_vit(std::int64_t image = 16, std::int64_t classes = 4) {
  ViTConfig cfg;
  cfg.image_h = image;
  cfg.image_w = image;
  cfg.patch = 8;
  cfg.dim = 16;
  cfg.depth = 1;
  cfg.heads = 2;
  cfg.mlp_ratio = 2.0F;
  cfg.num_classes = classes;
  return cfg;
}

TEST(ViTConfigTest, TokenCount) {
  EXPECT_EQ(tiny_vit(16).tokens(), 4);
  EXPECT_EQ(tiny_vit(32).tokens(), 16);
  EXPECT_EQ(ViTConfig::snappix_s(32, 10).tokens(), 16);
}

TEST(ViTConfigTest, VariantsDifferInCapacity) {
  const auto s = ViTConfig::snappix_s(32, 10);
  const auto b = ViTConfig::snappix_b(32, 10);
  EXPECT_LT(s.dim, b.dim);
  EXPECT_LT(s.depth, b.depth);
  EXPECT_EQ(s.patch, 8);
  EXPECT_EQ(b.patch, 8);
}

TEST(ViTEncoderTest, OutputShape) {
  Rng rng(1);
  ViTEncoder encoder(tiny_vit(), rng);
  const Tensor coded = Tensor::randn(Shape{3, 16, 16}, rng);
  EXPECT_EQ(encoder.forward(coded).shape(), (Shape{3, 4, 16}));
  EXPECT_THROW(encoder.forward(Tensor::zeros(Shape{1, 8, 16})), std::runtime_error);
}

TEST(ViTEncoderTest, PositionalEmbeddingBreaksPermutationSymmetry) {
  Rng rng(2);
  ViTEncoder encoder(tiny_vit(), rng);
  const Tensor coded = Tensor::randn(Shape{1, 16, 16}, rng);
  const Tensor tokens = encoder.embed(coded);
  // Swapping two patches changes the embedded tokens (pos embed differs).
  const Tensor swapped = index_select(tokens, 1, {1, 0, 2, 3});
  EXPECT_FALSE(allclose(tokens, swapped));
}

TEST(SnapPixClassifierTest, LogitShapeAndParamSharing) {
  Rng rng(3);
  auto encoder = std::make_shared<ViTEncoder>(tiny_vit(), rng);
  SnapPixClassifier classifier(encoder, rng);
  const Tensor coded = Tensor::randn(Shape{2, 16, 16}, rng);
  EXPECT_EQ(classifier.forward(coded).shape(), (Shape{2, 4}));
  // Shared encoder: classifier params include encoder params.
  EXPECT_GT(classifier.parameter_count(), encoder->parameter_count());
}

TEST(SnapPixClassifierTest, BiggerBackboneHasMoreParameters) {
  Rng rng(4);
  SnapPixClassifier small(ViTConfig::snappix_s(32, 10), rng);
  SnapPixClassifier big(ViTConfig::snappix_b(32, 10), rng);
  EXPECT_GT(big.parameter_count(), 2 * small.parameter_count());
}

TEST(SnapPixReconstructorTest, VideoShape) {
  Rng rng(5);
  SnapPixReconstructor rec(tiny_vit(), 8, rng);
  const Tensor coded = Tensor::randn(Shape{2, 16, 16}, rng);
  EXPECT_EQ(rec.forward(coded).shape(), (Shape{2, 8, 16, 16}));
}

TEST(CodedMaeTest, PretrainLossIsFiniteAndPositive) {
  Rng rng(6);
  auto encoder = std::make_shared<ViTEncoder>(tiny_vit(32), rng);
  CodedMae mae(encoder, 8, MaeConfig{}, rng);
  Rng data_rng(7);
  const Tensor video = Tensor::rand_uniform(Shape{2, 8, 32, 32}, data_rng);
  const Tensor coded = mean(video, 1);  // stand-in coded image
  Rng mask_rng(8);
  const Tensor loss = mae.pretrain_loss(coded, video, mask_rng);
  EXPECT_GT(loss.item(), 0.0F);
  EXPECT_TRUE(std::isfinite(loss.item()));
}

TEST(CodedMaeTest, LossDecreasesUnderTraining) {
  Rng rng(9);
  auto encoder = std::make_shared<ViTEncoder>(tiny_vit(32), rng);
  CodedMae mae(encoder, 8, MaeConfig{}, rng);
  Rng data_rng(10);
  const Tensor video = Tensor::rand_uniform(Shape{4, 8, 32, 32}, data_rng);
  const Tensor coded = mean(video, 1);
  // Plain SGD steps on a fixed batch must reduce the loss.
  auto params = mae.parameters();
  Rng mask_rng(11);
  float first_loss = 0.0F;
  float last_loss = 0.0F;
  for (int step = 0; step < 12; ++step) {
    mae.zero_grad();
    Rng step_mask(12);  // fixed masking for comparability
    Tensor loss = mae.pretrain_loss(coded, video, step_mask);
    if (step == 0) {
      first_loss = loss.item();
    }
    last_loss = loss.item();
    loss.backward();
    for (auto& p : params) {
      auto& impl = *p.impl();
      if (impl.grad.size() == impl.data.size()) {
        for (std::size_t i = 0; i < impl.data.size(); ++i) {
          impl.data[i] -= 0.05F * impl.grad[i];
        }
      }
    }
  }
  (void)mask_rng;
  EXPECT_LT(last_loss, first_loss);
}

TEST(CodedMaeTest, ReconstructShape) {
  Rng rng(13);
  auto encoder = std::make_shared<ViTEncoder>(tiny_vit(16), rng);
  MaeConfig cfg;
  cfg.frame_stride = 2;
  CodedMae mae(encoder, 8, cfg, rng);
  EXPECT_EQ(mae.predicted_frames(), 4);
  const Tensor coded = Tensor::randn(Shape{2, 16, 16}, rng);
  EXPECT_EQ(mae.reconstruct(coded).shape(), (Shape{2, 4, 16, 16}));
}

TEST(CodedMaeTest, InvalidConfigThrows) {
  Rng rng(14);
  auto encoder = std::make_shared<ViTEncoder>(tiny_vit(16), rng);
  MaeConfig bad_ratio;
  bad_ratio.mask_ratio = 1.5F;
  EXPECT_THROW(CodedMae(encoder, 8, bad_ratio, rng), std::runtime_error);
  MaeConfig bad_stride;
  bad_stride.frame_stride = 3;  // does not divide 8
  EXPECT_THROW(CodedMae(encoder, 8, bad_stride, rng), std::runtime_error);
}

TEST(SampleKeepIndices, SortedUniqueWithinRange) {
  Rng rng(15);
  const auto keep = models::sample_keep_indices(100, 15, rng);
  EXPECT_EQ(keep.size(), 15U);
  for (std::size_t i = 1; i < keep.size(); ++i) {
    EXPECT_LT(keep[i - 1], keep[i]);
  }
  EXPECT_GE(keep.front(), 0);
  EXPECT_LT(keep.back(), 100);
  EXPECT_THROW(models::sample_keep_indices(10, 11, rng), std::runtime_error);
}

TEST(Svc2dModelTest, LogitShape) {
  Rng rng(16);
  Svc2dModel model(16, 4, 5, rng);
  const Tensor coded = Tensor::randn(Shape{2, 16, 16}, rng);
  EXPECT_EQ(model.forward(coded).shape(), (Shape{2, 5}));
  EXPECT_THROW(model.forward(Tensor::zeros(Shape{2, 1, 16, 16})), std::runtime_error);
}

TEST(C3dModelTest, LogitShape) {
  Rng rng(17);
  C3dModel model(16, 8, 5, rng);
  const Tensor video = Tensor::randn(Shape{2, 8, 16, 16}, rng);
  EXPECT_EQ(model.forward(video).shape(), (Shape{2, 5}));
}

TEST(VideoViTTest, LogitShape) {
  Rng rng(18);
  VideoViTConfig cfg;
  cfg.image_h = 16;
  cfg.image_w = 16;
  cfg.frames = 8;
  cfg.tubelet_t = 2;
  cfg.patch = 8;
  cfg.dim = 16;
  cfg.depth = 1;
  cfg.heads = 2;
  cfg.num_classes = 5;
  VideoViT model(cfg, rng);
  EXPECT_EQ(cfg.tokens(), 16);
  const Tensor video = Tensor::randn(Shape{2, 8, 16, 16}, rng);
  EXPECT_EQ(model.forward(video).shape(), (Shape{2, 5}));
}

TEST(ModelZoo, AllModelsTrainOneStepWithoutError) {
  Rng rng(19);
  const Tensor coded = Tensor::randn(Shape{2, 16, 16}, rng);
  const Tensor video = Tensor::randn(Shape{2, 8, 16, 16}, rng);
  const std::vector<std::int64_t> labels{0, 1};

  SnapPixClassifier snappix(tiny_vit(), rng);
  Svc2dModel svc(16, 4, 4, rng);
  C3dModel c3d(16, 8, 4, rng);
  VideoViTConfig vcfg;
  vcfg.image_h = 16;
  vcfg.image_w = 16;
  vcfg.frames = 8;
  vcfg.dim = 16;
  vcfg.depth = 1;
  vcfg.heads = 2;
  vcfg.num_classes = 4;
  VideoViT vvit(vcfg, rng);

  for (int which = 0; which < 4; ++which) {
    Tensor loss = [&] {
      switch (which) {
        case 0:
          return cross_entropy(snappix.forward(coded), labels);
        case 1:
          return cross_entropy(svc.forward(coded), labels);
        case 2:
          return cross_entropy(c3d.forward(video), labels);
        default:
          return cross_entropy(vvit.forward(video), labels);
      }
    }();
    EXPECT_TRUE(std::isfinite(loss.item()));
    loss.backward();  // must not throw
  }
}

}  // namespace
}  // namespace snappix
