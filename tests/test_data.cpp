// Tests for the synthetic video generator and dataset plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace snappix {
namespace {

using data::DatasetConfig;
using data::MotionClass;
using data::SceneConfig;
using data::SyntheticVideoGenerator;
using data::VideoDataset;

TEST(Synthetic, SampleShapeAndRange) {
  SceneConfig cfg;
  const SyntheticVideoGenerator gen(cfg);
  Rng rng(1);
  const auto sample = gen.sample(rng);
  EXPECT_EQ(sample.video.shape(), (Shape{16, 32, 32}));
  EXPECT_GE(sample.label, 0);
  EXPECT_LT(sample.label, 10);
  for (const float v : sample.video.data()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
}

TEST(Synthetic, DeterministicGivenSeed) {
  SceneConfig cfg;
  const SyntheticVideoGenerator gen(cfg);
  Rng rng_a(7);
  Rng rng_b(7);
  const auto a = gen.sample(rng_a, 3);
  const auto b = gen.sample(rng_b, 3);
  EXPECT_EQ(a.label, b.label);
  EXPECT_TRUE(allclose(a.video, b.video));
}

TEST(Synthetic, StaticClassHasConstantFrames) {
  SceneConfig cfg;
  cfg.pixel_noise = 0.0F;
  const SyntheticVideoGenerator gen(cfg);
  Rng rng(2);
  const auto s = gen.sample(rng, static_cast<int>(MotionClass::kStatic));
  const Tensor first = slice(s.video, 0, 0, 1);
  for (std::int64_t t = 1; t < 16; ++t) {
    EXPECT_TRUE(allclose(slice(s.video, 0, t, t + 1), first, 1e-6F));
  }
}

TEST(Synthetic, MovingClassesChangeOverTime) {
  SceneConfig cfg;
  cfg.pixel_noise = 0.0F;
  const SyntheticVideoGenerator gen(cfg);
  for (int label = 1; label < 10; ++label) {
    Rng rng(static_cast<std::uint64_t>(100 + label));
    const auto s = gen.sample(rng, label);
    const Tensor first = slice(s.video, 0, 0, 1);
    const Tensor last = slice(s.video, 0, 15, 16);
    float diff = 0.0F;
    for (std::size_t i = 0; i < first.data().size(); ++i) {
      diff += std::fabs(first.data()[i] - last.data()[i]);
    }
    EXPECT_GT(diff, 1.0F) << "class " << data::motion_class_name(static_cast<MotionClass>(label))
                          << " should move";
  }
}

TEST(Synthetic, TranslationDirectionMatchesLabel) {
  // Centroid of |frame - background| should drift in the labelled direction.
  SceneConfig cfg;
  cfg.pixel_noise = 0.0F;
  cfg.background_texture = 0.0F;  // flat background isolates the shapes
  const SyntheticVideoGenerator gen(cfg);
  auto centroid_x = [](const Tensor& video, std::int64_t t) {
    double weight = 0.0;
    double cx = 0.0;
    for (std::int64_t y = 0; y < 32; ++y) {
      for (std::int64_t x = 0; x < 32; ++x) {
        const double v = std::fabs(video.at({t, y, x}) - 0.5F);
        weight += v;
        cx += v * static_cast<double>(x);
      }
    }
    return weight > 0 ? cx / weight : 0.0;
  };
  Rng rng_r(3);
  const auto right = gen.sample(rng_r, static_cast<int>(MotionClass::kTranslateRight));
  EXPECT_GT(centroid_x(right.video, 12), centroid_x(right.video, 0));
  Rng rng_l(3);
  const auto left = gen.sample(rng_l, static_cast<int>(MotionClass::kTranslateLeft));
  EXPECT_LT(centroid_x(left.video, 12), centroid_x(left.video, 0));
}

TEST(Synthetic, InvalidConfigThrows) {
  SceneConfig cfg;
  cfg.num_classes = 1;
  EXPECT_THROW(SyntheticVideoGenerator{cfg}, std::runtime_error);
  SceneConfig cfg2;
  cfg2.frames = 0;
  EXPECT_THROW(SyntheticVideoGenerator{cfg2}, std::runtime_error);
}

TEST(Synthetic, MotionClassNames) {
  EXPECT_STREQ(data::motion_class_name(MotionClass::kStatic), "static");
  EXPECT_STREQ(data::motion_class_name(MotionClass::kOscillate), "oscillate");
}

TEST(Dataset, BalancedSplits) {
  DatasetConfig cfg = data::ucf101_like();
  cfg.train_per_class = 4;
  cfg.test_per_class = 2;
  const VideoDataset ds(cfg);
  EXPECT_EQ(ds.num_classes(), 6);
  EXPECT_EQ(ds.train_size(), 24);
  EXPECT_EQ(ds.test_size(), 12);
  std::vector<int> counts(6, 0);
  for (std::int64_t i = 0; i < ds.train_size(); ++i) {
    counts[static_cast<std::size_t>(ds.train_sample(i).label)]++;
  }
  for (const int c : counts) {
    EXPECT_EQ(c, 4);
  }
}

TEST(Dataset, BatchStacksVideosAndLabels) {
  DatasetConfig cfg = data::k400_like();
  cfg.train_per_class = 2;
  cfg.test_per_class = 1;
  const VideoDataset ds(cfg);
  std::vector<std::int64_t> labels;
  const Tensor batch = ds.train_batch({0, 5, 9}, labels);
  EXPECT_EQ(batch.shape(), (Shape{3, 16, 32, 32}));
  ASSERT_EQ(labels.size(), 3U);
  EXPECT_EQ(labels[0], ds.train_sample(0).label);
  EXPECT_EQ(labels[2], ds.train_sample(9).label);
  // Data content matches the source samples.
  EXPECT_TRUE(allclose(
      Tensor::from_vector(std::vector<float>(batch.data().begin(),
                                             batch.data().begin() + 16 * 32 * 32),
                          Shape{16, 32, 32}),
      ds.train_sample(0).video));
}

TEST(Dataset, ShuffledIndicesAreAPermutation) {
  DatasetConfig cfg = data::ucf101_like();
  cfg.train_per_class = 3;
  cfg.test_per_class = 1;
  const VideoDataset ds(cfg);
  Rng rng(4);
  const auto indices = ds.shuffled_train_indices(rng);
  EXPECT_EQ(static_cast<std::int64_t>(indices.size()), ds.train_size());
  std::set<std::int64_t> unique(indices.begin(), indices.end());
  EXPECT_EQ(static_cast<std::int64_t>(unique.size()), ds.train_size());
}

TEST(Dataset, OutOfRangeAccessThrows) {
  DatasetConfig cfg = data::ucf101_like();
  cfg.train_per_class = 1;
  cfg.test_per_class = 1;
  const VideoDataset ds(cfg);
  EXPECT_THROW(ds.train_sample(ds.train_size()), std::runtime_error);
  EXPECT_THROW(ds.test_sample(-1), std::runtime_error);
  std::vector<std::int64_t> labels;
  EXPECT_THROW(ds.train_batch({}, labels), std::runtime_error);
}

TEST(Dataset, PresetsDiffer) {
  EXPECT_EQ(data::ucf101_like().scene.num_classes, 6);
  EXPECT_EQ(data::ssv2_like().scene.num_classes, 10);
  EXPECT_EQ(data::k400_like().scene.num_classes, 8);
  EXPECT_GT(data::ssv2_like().scene.background_texture,
            data::ucf101_like().scene.background_texture);
}

TEST(Downsample, AverageFilterValues) {
  // 4x4 constant blocks downsample exactly to their block value.
  std::vector<float> values(2 * 8 * 8);
  for (int t = 0; t < 2; ++t) {
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 8; ++x) {
        values[static_cast<std::size_t>((t * 8 + y) * 8 + x)] =
            static_cast<float>((y / 4) * 2 + (x / 4) + t * 10);
      }
    }
  }
  const Tensor videos = Tensor::from_vector(values, Shape{1, 2, 8, 8});
  const Tensor down = data::downsample_videos(videos, 4);
  EXPECT_EQ(down.shape(), (Shape{1, 2, 2, 2}));
  EXPECT_FLOAT_EQ(down.at({0, 0, 0, 0}), 0.0F);
  EXPECT_FLOAT_EQ(down.at({0, 0, 0, 1}), 1.0F);
  EXPECT_FLOAT_EQ(down.at({0, 1, 1, 1}), 13.0F);
}

TEST(Downsample, PreservesMean) {
  Rng rng(5);
  const Tensor videos = Tensor::rand_uniform(Shape{2, 4, 16, 16}, rng);
  const Tensor down = data::downsample_videos(videos, 4);
  EXPECT_NEAR(mean_all(down).item(), mean_all(videos).item(), 1e-5F);
}

TEST(Downsample, BadFactorThrows) {
  const Tensor videos = Tensor::zeros(Shape{1, 2, 9, 9});
  EXPECT_THROW(data::downsample_videos(videos, 4), std::runtime_error);
}

// Property sweep: every class renders valid, in-range videos at several
// resolutions and frame counts.
class SceneSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};  // frames, size, label

TEST_P(SceneSweepTest, RendersInRange) {
  const auto [frames, size, label] = GetParam();
  SceneConfig cfg;
  cfg.frames = frames;
  cfg.height = size;
  cfg.width = size;
  const SyntheticVideoGenerator gen(cfg);
  Rng rng(static_cast<std::uint64_t>(frames * 1000 + size * 10 + label));
  const auto s = gen.sample(rng, label);
  EXPECT_EQ(s.video.shape(), (Shape{frames, size, size}));
  for (const float v : s.video.data()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
}

INSTANTIATE_TEST_SUITE_P(SceneGrid, SceneSweepTest,
                         ::testing::Combine(::testing::Values(8, 16),
                                            ::testing::Values(16, 32),
                                            ::testing::Values(0, 4, 9)));

}  // namespace
}  // namespace snappix
