// Cross-layer chaos harness: seeded fault schedules for resilience tests and
// bench/resilience.cpp.
//
// Two injection surfaces, both deterministic:
//
//   ChaosReplaySource  a ReplayCameraSource whose framed link's fault rates
//                      follow a per-sequence-number episode schedule
//                      (burst-noise windows, camera flapping). Rates swap via
//                      FaultInjector::set_rates, which keeps the Rng where it
//                      is — the whole fault history stays a pure function of
//                      the link seed + schedule, never of wall-clock time.
//   SlowShard          a ServerConfig::before_batch hook that wedges one
//                      shard's worker inside serve_batch for a configured
//                      stall, after a configured number of clean batches —
//                      the hung-shard scenario the watchdog must catch.
//
// Header-only and test-local on purpose: production code must never depend
// on the chaos vocabulary.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/batcher.h"
#include "runtime/camera.h"
#include "transport/fault.h"

namespace snappix::chaos {

// One window of a camera's frame sequence ([start, end) by sequence number)
// during which its link runs with `faults` instead of the clean baseline.
// Overlapping episodes resolve to the first match in schedule order.
struct Episode {
  std::int64_t start = 0;
  std::int64_t end = 0;
  transport::FaultConfig faults;
};

// A burst-noise episode: every fault class elevated at once for [start, end).
inline Episode burst(std::int64_t start, std::int64_t end, double bit_flip_per_byte,
                     double packet_drop_rate, double lane_stall_rate = 0.0) {
  Episode episode;
  episode.start = start;
  episode.end = end;
  episode.faults.bit_flip_per_byte = bit_flip_per_byte;
  episode.faults.packet_drop_rate = packet_drop_rate;
  episode.faults.lane_stall_rate = lane_stall_rate;
  return episode;
}

// A flapping camera: `cycles` alternating bad/clean windows of `period`
// frames each, starting bad at `start`.
inline std::vector<Episode> flapping(std::int64_t start, std::int64_t period, int cycles,
                                     const transport::FaultConfig& faults) {
  std::vector<Episode> schedule;
  schedule.reserve(static_cast<std::size_t>(cycles));
  for (int c = 0; c < cycles; ++c) {
    Episode episode;
    episode.start = start + 2 * c * period;
    episode.end = episode.start + period;
    episode.faults = faults;
    schedule.push_back(episode);
  }
  return schedule;
}

// Replay camera whose framed link follows an episode schedule. Outside every
// episode the link runs CLEAN (all rates zero), so frames outside episodes
// are bit-identical to a fault-free run of the same replay buffer — the
// invariant the resilience gates check. The rate swap happens on the
// camera's own producer thread, right before the capture, which is the only
// thread allowed to touch the link.
class ChaosReplaySource : public runtime::ReplayCameraSource {
 public:
  ChaosReplaySource(int id, runtime::PatternRef pattern, std::vector<Tensor> coded,
                    std::vector<std::int64_t> labels, std::vector<Episode> schedule)
      : ReplayCameraSource(id, std::move(pattern), std::move(coded), std::move(labels)),
        schedule_(std::move(schedule)) {}

 protected:
  runtime::Frame capture_frame() override {
    if (framed()) {
      transport::FaultConfig rates;  // default-constructed = clean
      for (const Episode& episode : schedule_) {
        if (next_sequence_ >= episode.start && next_sequence_ < episode.end) {
          rates = episode.faults;
          break;
        }
      }
      framed_link()->set_faults(rates);
    }
    return ReplayCameraSource::capture_frame();
  }

 private:
  std::vector<Episode> schedule_;
};

// before_batch hook that stalls one shard: after `after_batches` batches have
// started on the target shard, the next `stalls` batches on it each sleep
// `stall` before serving. Copyable (ServerConfig::before_batch is a
// std::function) — copies share one state block, so the budget is global.
// Never touches frame payloads: served bits are unaffected by construction.
class SlowShard {
 public:
  SlowShard(std::size_t shard, int after_batches, std::chrono::milliseconds stall,
            int stalls = 1)
      : state_(std::make_shared<State>()) {
    state_->shard = shard;
    state_->after = after_batches;
    state_->stall = stall;
    state_->remaining.store(stalls, std::memory_order_relaxed);
  }

  void operator()(std::size_t shard, const runtime::BatchKey& /*key*/,
                  std::size_t /*frames*/) const {
    State& state = *state_;
    if (shard != state.shard) {
      return;
    }
    if (state.seen.fetch_add(1, std::memory_order_relaxed) < state.after) {
      return;
    }
    // Claim one stall from the budget; losing the CAS race means another
    // batch on this shard already took it.
    int remaining = state.remaining.load(std::memory_order_relaxed);
    while (remaining > 0 &&
           !state.remaining.compare_exchange_weak(remaining, remaining - 1,
                                                  std::memory_order_relaxed)) {
    }
    if (remaining > 0) {
      std::this_thread::sleep_for(state.stall);
    }
  }

  int stalls_left() const { return state_->remaining.load(std::memory_order_relaxed); }

 private:
  struct State {
    std::size_t shard = 0;
    int after = 0;
    std::chrono::milliseconds stall{0};
    // order: relaxed — both counters only gate the injected sleep; no data
    // is published through them and overshoot by a racing batch is harmless.
    std::atomic<int> seen{0};
    std::atomic<int> remaining{0};
  };
  std::shared_ptr<State> state_;
};

}  // namespace snappix::chaos
