// HealthController suite (docs/resilience.md): the per-camera link-health
// state machine, driven directly through admit_capture()/on_frame() with a
// scripted transport history — no threads, no fault Rng, so every transition
// and every knob write is pinned exactly. Groups:
//
//   1. Config validation — every rejected field throws std::invalid_argument.
//   2. Ladder mechanics — a bad window steps the camera down one rung and
//      sets exactly the configured knobs; clean windows step back up
//      hysteretically and restore the attach-time base values.
//   3. Quarantine — the outright-quarantine threshold, the consecutive-loss
//      tripwire, the capture hold, and the drop accounting.
//   4. Plumbing — transition hook arguments and RuntimeStats summary rows.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "ce/pattern.h"
#include "codec/bitplane.h"
#include "runtime/camera.h"
#include "runtime/health.h"
#include "runtime/stats.h"

namespace snappix {
namespace {

using runtime::CameraHealthSnapshot;
using runtime::HealthConfig;
using runtime::HealthController;
using runtime::HealthState;
using runtime::LadderStep;
using runtime::Precision;
using runtime::QosClass;
using runtime::ReplayCameraSource;
using runtime::RuntimeStats;

// Small, fully-pinned supervision config: window 4, degrade at 2/4 errors,
// outright quarantine at 4/4, tripwire far away so window logic is what
// trips, one clean window per upward step.
HealthConfig small_config() {
  HealthConfig config;
  config.enabled = true;
  config.window = 4;
  config.degrade_error_rate = 0.5;
  config.degrade_retransmit_rate = 2.0;
  config.quarantine_error_rate = 1.0;
  config.quarantine_consecutive_losses = 100;
  config.quarantine_hold = 3;
  config.recover_clean_windows = 1;
  return config;
}

std::unique_ptr<ReplayCameraSource> make_camera(int id) {
  std::vector<float> data(8 * 8, 0.5F);
  std::vector<Tensor> coded;
  coded.push_back(Tensor::from_vector(std::move(data), Shape{8, 8}));
  return std::make_unique<ReplayCameraSource>(id, ce::CePattern::long_exposure(8, 8),
                                              std::move(coded),
                                              std::vector<std::int64_t>{});
}

// Reports `count` frames with the given fate to the controller.
void report(HealthController& health, runtime::CameraSource& camera, int count,
            bool corrupt, int retransmits = 0) {
  for (int i = 0; i < count; ++i) {
    health.on_frame(camera, corrupt, retransmits);
  }
}

TEST(HealthValidation, RejectsUnusableConfigs) {
  const HealthConfig good = small_config();
  EXPECT_NO_THROW(runtime::validate(good));

  HealthConfig bad = good;
  bad.window = 0;
  EXPECT_THROW(runtime::validate(bad), std::invalid_argument);

  bad = good;
  bad.degrade_error_rate = 0.0;
  EXPECT_THROW(runtime::validate(bad), std::invalid_argument);

  bad = good;
  bad.degrade_error_rate = std::nan("");
  EXPECT_THROW(runtime::validate(bad), std::invalid_argument);

  bad = good;
  bad.quarantine_error_rate = 1.5;
  EXPECT_THROW(runtime::validate(bad), std::invalid_argument);

  bad = good;
  // Quarantine below degrade would quarantine on every merely-bad window.
  bad.degrade_error_rate = 0.8;
  bad.quarantine_error_rate = 0.5;
  EXPECT_THROW(runtime::validate(bad), std::invalid_argument);

  bad = good;
  bad.degrade_retransmit_rate = -1.0;
  EXPECT_THROW(runtime::validate(bad), std::invalid_argument);

  bad = good;
  bad.quarantine_hold = 0;
  EXPECT_THROW(runtime::validate(bad), std::invalid_argument);

  bad = good;
  bad.recover_clean_windows = 0;
  EXPECT_THROW(runtime::validate(bad), std::invalid_argument);

  bad = good;
  bad.ladder = {{LadderStep::Kind::kCodecPlanes, 0}};
  EXPECT_THROW(runtime::validate(bad), std::invalid_argument);

  bad = good;
  bad.ladder = {{LadderStep::Kind::kCodecPlanes, codec::kMaxBitplanes + 1}};
  EXPECT_THROW(runtime::validate(bad), std::invalid_argument);

  bad = good;
  bad.watchdog.enabled = true;
  bad.watchdog.poll = std::chrono::microseconds{0};
  EXPECT_THROW(runtime::validate(bad), std::invalid_argument);

  bad = good;
  bad.watchdog.enabled = true;
  bad.watchdog.stall_polls = 0;
  EXPECT_THROW(runtime::validate(bad), std::invalid_argument);

  // Disabled configs are inert: garbage in them cannot act, so it passes.
  bad = good;
  bad.enabled = false;
  bad.window = -5;
  EXPECT_NO_THROW(runtime::validate(bad));
}

TEST(HealthLadder, BadWindowStepsDownAndSetsExactlyTheConfiguredKnobs) {
  RuntimeStats stats;
  HealthController health(small_config(), stats);
  auto camera = make_camera(7);
  camera->set_default_codec_planes(9);  // base depth the first rung caps
  health.attach(*camera);
  ASSERT_TRUE(health.attached(7));
  EXPECT_EQ(health.state(7), HealthState::kHealthy);

  // 2 corrupt + 2 clean closes the window at exactly the degrade threshold.
  report(health, *camera, 2, /*corrupt=*/true);
  EXPECT_EQ(health.state(7), HealthState::kHealthy);  // window still open
  report(health, *camera, 2, /*corrupt=*/false);

  EXPECT_EQ(health.state(7), HealthState::kDegraded);
  const CameraHealthSnapshot snap = health.snapshot(7);
  EXPECT_EQ(snap.ladder_step, 1);
  EXPECT_EQ(snap.steps_down, 1U);
  // Rung 0 (codec depth 4) engaged; rungs 1 and 2 untouched.
  EXPECT_EQ(camera->classify_codec_planes(), 4);
  EXPECT_EQ(camera->precision(), Precision::kFp32);
  EXPECT_EQ(camera->qos(), QosClass::kStandard);
}

TEST(HealthLadder, RetransmitStormDegradesWithoutAnyFinalLoss) {
  RuntimeStats stats;
  HealthController health(small_config(), stats);
  auto camera = make_camera(3);
  health.attach(*camera);

  // Every frame recovered (corrupt=false) but each burned 2 retries: the
  // window's retransmit rate hits degrade_retransmit_rate exactly.
  report(health, *camera, 4, /*corrupt=*/false, /*retransmits=*/2);
  EXPECT_EQ(health.state(3), HealthState::kDegraded);
  EXPECT_EQ(health.snapshot(3).ladder_step, 1);
}

TEST(HealthLadder, FullDescentQuarantinesThenRecoversToBaseKnobs) {
  RuntimeStats stats;
  HealthConfig config = small_config();
  HealthController health(config, stats);
  auto camera = make_camera(1);
  camera->set_default_codec_planes(9);
  health.attach(*camera);

  // An all-corrupt window hits the outright-quarantine threshold (1.0): the
  // ladder is skipped entirely.
  report(health, *camera, 4, /*corrupt=*/true, 1);
  EXPECT_EQ(health.state(1), HealthState::kQuarantined);

  // A second camera descends rung by rung on merely-bad (2/4) windows.
  auto camera2 = make_camera(2);
  camera2->set_default_codec_planes(9);
  health.attach(*camera2);
  auto bad_window2 = [&] {
    report(health, *camera2, 2, /*corrupt=*/true);
    report(health, *camera2, 2, /*corrupt=*/false);
  };
  bad_window2();
  EXPECT_EQ(camera2->classify_codec_planes(), 4);
  bad_window2();
  EXPECT_EQ(camera2->precision(), Precision::kInt8);
  bad_window2();
  EXPECT_EQ(camera2->qos(), QosClass::kBestEffort);
  EXPECT_EQ(health.snapshot(2).ladder_step, 3);
  EXPECT_EQ(health.state(2), HealthState::kDegraded);

  // A fourth bad window finds no rungs left: quarantine.
  bad_window2();
  EXPECT_EQ(health.state(2), HealthState::kQuarantined);

  // The hold is denominated in skipped captures.
  EXPECT_FALSE(health.admit_capture(2));
  EXPECT_FALSE(health.admit_capture(2));
  EXPECT_EQ(health.state(2), HealthState::kQuarantined);
  EXPECT_FALSE(health.admit_capture(2));  // hold (3) elapsed
  EXPECT_EQ(health.state(2), HealthState::kRecovering);
  EXPECT_TRUE(health.admit_capture(2));  // captures resume
  EXPECT_EQ(health.snapshot(2).quarantine_drops, 3U);

  // Clean windows step back up one rung each (recover_clean_windows = 1),
  // restoring base knobs in reverse order; the last step lands kHealthy.
  report(health, *camera2, 4, /*corrupt=*/false);
  EXPECT_EQ(camera2->qos(), QosClass::kStandard);
  EXPECT_EQ(health.state(2), HealthState::kRecovering);
  report(health, *camera2, 4, /*corrupt=*/false);
  EXPECT_EQ(camera2->precision(), Precision::kFp32);
  report(health, *camera2, 4, /*corrupt=*/false);
  EXPECT_EQ(camera2->classify_codec_planes(), 9);
  EXPECT_EQ(health.state(2), HealthState::kHealthy);
  EXPECT_EQ(health.snapshot(2).ladder_step, 0);
  EXPECT_EQ(health.snapshot(2).steps_up, 3U);
}

TEST(HealthLadder, HysteresisNeedsConsecutiveCleanWindows) {
  RuntimeStats stats;
  HealthConfig config = small_config();
  config.recover_clean_windows = 2;
  HealthController health(config, stats);
  auto camera = make_camera(5);
  health.attach(*camera);

  auto window = [&](bool bad) {
    report(health, *camera, bad ? 2 : 0, /*corrupt=*/true);
    report(health, *camera, bad ? 2 : 4, /*corrupt=*/false);
  };
  window(true);
  EXPECT_EQ(health.snapshot(5).ladder_step, 1);

  // clean, bad: the bad window resets the clean streak AND steps down again.
  window(false);
  EXPECT_EQ(health.snapshot(5).ladder_step, 1);  // 1 clean of 2 — no step up
  window(true);
  EXPECT_EQ(health.snapshot(5).ladder_step, 2);

  // Two consecutive clean windows per upward step.
  window(false);
  EXPECT_EQ(health.snapshot(5).ladder_step, 2);
  window(false);
  EXPECT_EQ(health.snapshot(5).ladder_step, 1);
  EXPECT_EQ(health.state(5), HealthState::kRecovering);
  window(false);
  window(false);
  EXPECT_EQ(health.snapshot(5).ladder_step, 0);
  EXPECT_EQ(health.state(5), HealthState::kHealthy);
}

TEST(HealthQuarantine, ConsecutiveLossTripwireFiresMidWindow) {
  RuntimeStats stats;
  HealthConfig config = small_config();
  config.window = 100;  // the window never closes; only the tripwire can act
  config.quarantine_consecutive_losses = 6;
  HealthController health(config, stats);
  auto camera = make_camera(4);
  health.attach(*camera);

  report(health, *camera, 5, /*corrupt=*/true);
  EXPECT_EQ(health.state(4), HealthState::kHealthy);
  // A recovered frame resets the streak.
  report(health, *camera, 1, /*corrupt=*/false);
  report(health, *camera, 5, /*corrupt=*/true);
  EXPECT_EQ(health.state(4), HealthState::kHealthy);
  report(health, *camera, 1, /*corrupt=*/true);  // 6th consecutive loss
  EXPECT_EQ(health.state(4), HealthState::kQuarantined);
}

TEST(HealthQuarantine, MostlyDeadWindowSkipsTheLadderEntirely) {
  RuntimeStats stats;
  HealthConfig config = small_config();
  config.quarantine_error_rate = 0.75;
  HealthController health(config, stats);
  auto camera = make_camera(9);
  health.attach(*camera);

  report(health, *camera, 3, /*corrupt=*/true);
  report(health, *camera, 1, /*corrupt=*/false);
  EXPECT_EQ(health.state(9), HealthState::kQuarantined);
  EXPECT_EQ(health.snapshot(9).ladder_step, 0);  // never touched the knobs
  EXPECT_EQ(camera->classify_codec_planes(), 0);
}

TEST(HealthPlumbing, TransitionHookSeesEveryEdgeWithItsLadderStep) {
  RuntimeStats stats;
  HealthController health(small_config(), stats);
  auto camera = make_camera(2);
  health.attach(*camera);

  std::vector<std::tuple<int, HealthState, HealthState, int>> edges;
  health.set_transition_hook(
      [&edges](int id, HealthState from, HealthState to, int step) {
        edges.emplace_back(id, from, to, step);
      });

  report(health, *camera, 2, /*corrupt=*/true);
  report(health, *camera, 2, /*corrupt=*/false);  // -> kDegraded, step 1
  report(health, *camera, 4, /*corrupt=*/false);  // -> kHealthy, step 0

  ASSERT_EQ(edges.size(), 2U);
  EXPECT_EQ(edges[0], std::make_tuple(2, HealthState::kHealthy,
                                      HealthState::kDegraded, 1));
  EXPECT_EQ(edges[1], std::make_tuple(2, HealthState::kDegraded,
                                      HealthState::kHealthy, 0));
}

TEST(HealthPlumbing, SummaryAggregatesHealthCountersPerCamera) {
  RuntimeStats stats;
  HealthController health(small_config(), stats);
  auto camera = make_camera(11);
  health.attach(*camera);

  report(health, *camera, 4, /*corrupt=*/true);  // all-corrupt -> quarantine
  EXPECT_FALSE(health.admit_capture(11));

  const runtime::RuntimeSummary summary = stats.summary(1.0);
  EXPECT_EQ(summary.health_transitions, 1U);  // kHealthy -> kQuarantined
  EXPECT_EQ(summary.quarantine_drops, 1U);
  ASSERT_EQ(summary.health_cameras.size(), 1U);
  EXPECT_EQ(summary.health_cameras[0].first, 11);
  EXPECT_EQ(summary.health_cameras[0].second.transitions, 1U);
  EXPECT_EQ(summary.health_cameras[0].second.quarantine_drops, 1U);

  // The counters render into both human and JSON reports.
  EXPECT_NE(runtime::to_string(summary).find("health"), std::string::npos);
  EXPECT_NE(runtime::to_json(summary, runtime::FleetEnergyReport{}, "test")
                .find("\"health_transitions\": 1"),
            std::string::npos);
}

TEST(HealthPlumbing, ControllerRejectsDisabledConfigAndDuplicateAttach) {
  RuntimeStats stats;
  EXPECT_THROW(HealthController(HealthConfig{}, stats), std::exception);

  HealthController health(small_config(), stats);
  auto camera = make_camera(1);
  health.attach(*camera);
  EXPECT_THROW(health.attach(*camera), std::exception);

  // Unknown cameras are fail-open: never supervised, never blocked.
  EXPECT_TRUE(health.admit_capture(999));
  EXPECT_EQ(health.state(999), HealthState::kHealthy);
}

}  // namespace
}  // namespace snappix
