// Minimal validating JSON parser for tests: strict enough to reject the
// artifacts the observability layer must never emit (bare nan/inf tokens,
// trailing commas, unterminated strings), small enough to read in one sitting.
// Parses into a tree of Value nodes; throws std::runtime_error on any syntax
// error with a byte offset in the message.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace snappix::testing::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  bool has(const std::string& key) const {
    return type == Type::kObject && object.count(key) > 0;
  }
  const Value& at(const std::string& key) const {
    if (!has(key)) {
      throw std::runtime_error("json: missing key \"" + key + "\"");
    }
    return object.at(key);
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing content after top-level value");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream os;
    os << "json parse error at byte " << pos_ << ": " << what;
    throw std::runtime_error(os.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
        if (literal("true")) {
          Value v;
          v.type = Value::Type::kBool;
          v.boolean = true;
          return v;
        }
        fail("bad literal");
      case 'f':
        if (literal("false")) {
          Value v;
          v.type = Value::Type::kBool;
          return v;
        }
        fail("bad literal");
      case 'n':
        if (literal("null")) {
          return Value{};
        }
        fail("bad literal");  // catches a bare "nan" token
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("unterminated escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u':
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
            }
            // Validation only: keep the escape verbatim rather than decoding.
            out.append("\\u").append(text_, pos_, 4);
            pos_ += 4;
            break;
          default: fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("bad number");  // catches bare "inf", "-inf", ".5"
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad fraction");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    Value v;
    v.type = Value::Type::kNumber;
    v.number = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline Value parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace snappix::testing::json
