// Tests for optimizers, schedules, task trainers, and CE-pattern learning.
#include <gtest/gtest.h>

#include <cmath>

#include "ce/encode.h"
#include "ce/stats.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "models/vit.h"
#include "train/optimizer.h"
#include "train/pattern_trainer.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace snappix {
namespace {

using train::AdamW;
using train::Sgd;

TEST(Optimizers, SgdMinimizesQuadratic) {
  Tensor x = Tensor::from_vector({5.0F, -3.0F}, Shape{2}).set_requires_grad(true);
  Sgd opt({x}, 0.1F);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    Tensor loss = sum_all(square(x));
    loss.backward();
    opt.step();
  }
  EXPECT_LT(std::fabs(x.data()[0]), 1e-3F);
  EXPECT_LT(std::fabs(x.data()[1]), 1e-3F);
}

TEST(Optimizers, SgdMomentumAcceleratesOnConstantGradient) {
  Tensor a = Tensor::scalar(0.0F, true);
  Tensor b = Tensor::scalar(0.0F, true);
  Sgd plain({a}, 0.01F, 0.0F);
  Sgd momentum({b}, 0.01F, 0.9F);
  for (int i = 0; i < 20; ++i) {
    plain.zero_grad();
    momentum.zero_grad();
    // Constant-gradient objective: loss = -x.
    neg(a).backward();
    neg(b).backward();
    plain.step();
    momentum.step();
  }
  EXPECT_GT(b.item(), a.item());
}

TEST(Optimizers, AdamWMinimizesRosenbrockish) {
  Tensor x = Tensor::from_vector({-1.5F, 2.0F}, Shape{2}).set_requires_grad(true);
  AdamW opt({x}, 0.05F);
  for (int i = 0; i < 400; ++i) {
    opt.zero_grad();
    Tensor x0 = slice(x, 0, 0, 1);
    Tensor x1 = slice(x, 0, 1, 2);
    // f = (1-x0)^2 + 5 (x1 - x0^2)^2
    Tensor loss = add(square(add_scalar(neg(x0), 1.0F)),
                      mul_scalar(square(sub(x1, square(x0))), 5.0F));
    sum_all(loss).backward();
    opt.step();
  }
  EXPECT_NEAR(x.data()[0], 1.0F, 0.15F);
  EXPECT_NEAR(x.data()[1], 1.0F, 0.3F);
}

TEST(Optimizers, AdamWWeightDecayShrinksParams) {
  Tensor x = Tensor::scalar(1.0F, true);
  AdamW opt({x}, 0.01F, 0.9F, 0.999F, 1e-8F, /*weight_decay=*/0.5F);
  for (int i = 0; i < 50; ++i) {
    opt.zero_grad();
    // Zero-gradient objective; only decay acts.
    mul_scalar(x, 0.0F).backward();
    opt.step();
  }
  EXPECT_LT(x.item(), 0.9F);
}

TEST(Optimizers, EmptyParamsThrow) {
  EXPECT_THROW(Sgd({}, 0.1F), std::runtime_error);
}

TEST(Optimizers, SkipsUntouchedParams) {
  Tensor used = Tensor::scalar(1.0F, true);
  Tensor unused = Tensor::scalar(1.0F, true);
  AdamW opt({used, unused}, 0.1F);
  opt.zero_grad();
  square(used).backward();
  opt.step();
  EXPECT_NE(used.item(), 1.0F);
  EXPECT_FLOAT_EQ(unused.item(), 1.0F);
}

TEST(Schedule, CosineWarmup) {
  const float base = 1.0F;
  // Warmup ramps linearly.
  EXPECT_NEAR(train::cosine_warmup_lr(base, 0, 100, 10), 0.1F, 1e-6F);
  EXPECT_NEAR(train::cosine_warmup_lr(base, 9, 100, 10), 1.0F, 1e-6F);
  // Midpoint of cosine ~ half the base lr.
  EXPECT_NEAR(train::cosine_warmup_lr(base, 55, 100, 10), 0.5F, 0.03F);
  // End decays to ~0.
  EXPECT_LT(train::cosine_warmup_lr(base, 99, 100, 10), 0.01F);
}

TEST(Metrics, Top1Accuracy) {
  const Tensor logits = Tensor::from_vector({2, 1, 0,   // -> 0
                                             0, 3, 1,   // -> 1
                                             1, 0, 5},  // -> 2
                                            Shape{3, 3});
  EXPECT_FLOAT_EQ(eval::top1_accuracy(logits, {0, 1, 2}), 1.0F);
  EXPECT_NEAR(eval::top1_accuracy(logits, {0, 1, 0}), 2.0F / 3.0F, 1e-6F);
}

TEST(Metrics, ConfusionMatrix) {
  const Tensor logits = Tensor::from_vector({2, 0, 0, 2, 0, 2}, Shape{3, 2});
  const auto m = eval::confusion_matrix(logits, {0, 1, 1}, 2);
  EXPECT_EQ(m[0][0], 1);
  EXPECT_EQ(m[1][1], 2);
  EXPECT_EQ(m[0][1], 0);
  EXPECT_EQ(m[1][0], 0);
}

TEST(Metrics, PsnrKnownValues) {
  const Tensor a = Tensor::zeros(Shape{4});
  const Tensor b = Tensor::full(Shape{4}, 0.1F);
  // MSE = 0.01 -> PSNR = 20 dB at peak 1.0.
  EXPECT_NEAR(eval::psnr_db(a, b), 20.0F, 1e-3F);
  EXPECT_TRUE(std::isinf(eval::psnr_db(a, a)));
}

TEST(Metrics, ThroughputIsPositive) {
  const double per_sec = eval::measure_per_second([] {}, 1, 5);
  EXPECT_GT(per_sec, 0.0);
}

data::DatasetConfig tiny_dataset(int train_per_class = 10) {
  auto cfg = data::ucf101_like(/*frames=*/8, /*size=*/16);
  cfg.scene.num_classes = 3;
  cfg.scene.speed = 2.0F;
  cfg.train_per_class = train_per_class;
  cfg.test_per_class = 12;
  return cfg;
}

TEST(Trainer, ClassifierLearnsAboveChance) {
  const data::VideoDataset dataset(tiny_dataset(/*train_per_class=*/48));
  Rng rng(1);
  models::ViTConfig cfg;
  cfg.image_h = 16;
  cfg.image_w = 16;
  cfg.patch = 8;
  cfg.dim = 24;
  cfg.depth = 2;
  cfg.heads = 2;
  cfg.num_classes = 3;
  models::SnapPixClassifier model(cfg, rng);
  const auto pattern = ce::CePattern::random(8, 8, rng, 0.5F);
  auto transform = [&](const Tensor& videos) {
    return ce::normalize_by_exposure(ce::ce_encode(videos, pattern), pattern);
  };
  auto forward = [&](const Tensor& input) { return model.forward(input); };
  train::TrainConfig tc;
  tc.epochs = 25;
  tc.batch_size = 12;
  tc.lr = 3e-3F;
  const auto result = train::fit_classifier(model.parameters(), forward, dataset, transform, tc);
  // 3 classes -> chance is 0.33; trained model must clearly beat it.
  EXPECT_GT(result.test_metric, 0.5F);
  // Loss must have decreased.
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
}

TEST(Trainer, ReconstructorImprovesPsnr) {
  const data::VideoDataset dataset(tiny_dataset(/*train_per_class=*/24));
  Rng rng(2);
  models::ViTConfig cfg;
  cfg.image_h = 16;
  cfg.image_w = 16;
  cfg.patch = 8;
  cfg.dim = 24;
  cfg.depth = 1;
  cfg.heads = 2;
  cfg.num_classes = 3;
  models::SnapPixReconstructor model(cfg, 8, rng);
  const auto pattern = ce::CePattern::random(8, 8, rng, 0.5F);
  auto transform = [&](const Tensor& videos) {
    return ce::normalize_by_exposure(ce::ce_encode(videos, pattern), pattern);
  };
  auto forward = [&](const Tensor& input) { return model.forward(input); };
  const float psnr_before = train::evaluate_reconstructor(forward, dataset, transform);
  train::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 12;
  tc.lr = 3e-3F;
  const auto result =
      train::fit_reconstructor(model.parameters(), forward, dataset, transform, tc);
  EXPECT_GT(result.test_metric, psnr_before);
  EXPECT_GT(result.test_metric, 10.0F);  // well above random output
}

TEST(PatternTrainer, DecorrelationLossDecreases) {
  const data::VideoDataset dataset(tiny_dataset());
  train::PatternTrainConfig cfg;
  cfg.tile = 8;
  cfg.steps = 60;
  cfg.batch_size = 6;
  const auto result = train::learn_decorrelated_pattern(dataset, cfg);
  // Average of the last 10 steps below the first step.
  float tail = 0.0F;
  for (std::size_t i = result.loss_curve.size() - 10; i < result.loss_curve.size(); ++i) {
    tail += result.loss_curve[i];
  }
  tail /= 10.0F;
  EXPECT_LT(tail, result.loss_curve.front());
  EXPECT_EQ(result.pattern.tile(), 8);
  EXPECT_EQ(result.pattern.slots(), 8);
}

TEST(PatternTrainer, LearnedPatternDecorrelatesBetterThanLong) {
  const data::VideoDataset dataset(tiny_dataset());
  train::PatternTrainConfig cfg;
  cfg.tile = 8;
  cfg.steps = 80;
  cfg.batch_size = 6;
  const auto result = train::learn_decorrelated_pattern(dataset, cfg);

  // Evaluate mean correlation of coded images on held-out data.
  std::vector<std::int64_t> indices;
  for (std::int64_t i = 0; i < dataset.test_size(); ++i) {
    indices.push_back(i);
  }
  std::vector<std::int64_t> labels;
  const Tensor videos = dataset.test_batch(indices, labels);
  const float corr_learned =
      ce::mean_correlation(ce::ce_encode(videos, result.pattern), 8);
  const float corr_long = ce::mean_correlation(
      ce::ce_encode(videos, ce::CePattern::long_exposure(8, 8)), 8);
  EXPECT_LT(corr_learned, corr_long);
}

TEST(PatternTrainer, EveryPixelExposedAtLeastOnce) {
  const data::VideoDataset dataset(tiny_dataset());
  train::PatternTrainConfig cfg;
  cfg.tile = 8;
  cfg.steps = 40;
  cfg.batch_size = 4;
  const auto result = train::learn_decorrelated_pattern(dataset, cfg);
  for (const int c : result.pattern.exposure_counts()) {
    EXPECT_GE(c, 1);  // anti-collapse guard
  }
}

TEST(PatternTrainer, TaskPatternTrainsJointly) {
  const data::VideoDataset dataset(tiny_dataset());
  Rng rng(3);
  models::ViTConfig cfg;
  cfg.image_h = 16;
  cfg.image_w = 16;
  cfg.patch = 8;
  cfg.dim = 16;
  cfg.depth = 1;
  cfg.heads = 2;
  cfg.num_classes = 3;
  models::SnapPixClassifier model(cfg, rng);
  train::PatternTrainConfig pc;
  pc.tile = 8;
  pc.batch_size = 6;
  pc.lr = 2e-3F;
  const auto result = train::learn_task_pattern(
      dataset, model.parameters(), [&](const Tensor& coded) { return model.forward(coded); }, pc,
      /*epochs=*/4);
  EXPECT_LT(result.loss_curve.back(), result.loss_curve.front());
  EXPECT_EQ(result.pattern.slots(), 8);
}

}  // namespace
}  // namespace snappix
