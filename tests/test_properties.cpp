// Cross-module property sweeps: parameterized invariants that tie the
// subsystems to the paper's claims across whole parameter grids.
#include <gtest/gtest.h>

#include <cmath>

#include "ce/encode.h"
#include "ce/pattern.h"
#include "ce/stats.h"
#include "energy/model.h"
#include "energy/scenario.h"
#include "eval/metrics.h"
#include "models/mae.h"
#include "models/vit.h"
#include "sensor/adc.h"
#include "sensor/sensor.h"
#include "train/optimizer.h"
#include "util/rng.h"

namespace snappix {
namespace {

// --- ADC: quantization error bounded by one LSB at every bit depth -----------
class AdcDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdcDepthSweep, QuantizationErrorWithinOneLsb) {
  const int bits = GetParam();
  sensor::ColumnAdc adc(
      sensor::AdcConfig{.bits = bits, .full_scale = 1.0F, .cycles_per_conversion = bits});
  Rng rng(static_cast<std::uint64_t>(bits));
  const auto max_code = static_cast<float>((1U << bits) - 1U);
  for (int i = 0; i < 200; ++i) {
    const float v = rng.uniform(0.0F, 1.0F);
    const auto code = adc.convert(v);
    const float reconstructed = static_cast<float>(code) / max_code;
    EXPECT_LE(std::fabs(reconstructed - v), 1.0F / max_code);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, AdcDepthSweep, ::testing::Values(4, 6, 8, 10, 12, 14));

// --- MAE: pre-training loss well defined across mask ratios -------------------
class MaskRatioSweep : public ::testing::TestWithParam<float> {};

TEST_P(MaskRatioSweep, PretrainLossFiniteAndPositive) {
  Rng rng(1);
  models::ViTConfig cfg;
  cfg.image_h = 32;
  cfg.image_w = 32;
  cfg.patch = 8;
  cfg.dim = 16;
  cfg.depth = 1;
  cfg.heads = 2;
  cfg.num_classes = 4;
  auto encoder = std::make_shared<models::ViTEncoder>(cfg, rng);
  models::MaeConfig mae_cfg;
  mae_cfg.mask_ratio = GetParam();
  models::CodedMae mae(encoder, 8, mae_cfg, rng);
  Rng data_rng(2);
  const Tensor video = Tensor::rand_uniform(Shape{2, 8, 32, 32}, data_rng);
  const Tensor coded = mean(video, 1);
  Rng mask_rng(3);
  const Tensor loss = mae.pretrain_loss(coded, video, mask_rng);
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_GT(loss.item(), 0.0F);
}

INSTANTIATE_TEST_SUITE_P(Ratios, MaskRatioSweep, ::testing::Values(0.25F, 0.5F, 0.75F, 0.85F));

// --- optimizer: AdamW converges on a quadratic across learning rates ----------
class AdamLrSweep : public ::testing::TestWithParam<float> {};

TEST_P(AdamLrSweep, ConvergesOnQuadratic) {
  Tensor x = Tensor::from_vector({4.0F, -2.0F, 1.0F}, Shape{3}).set_requires_grad(true);
  train::AdamW opt({x}, GetParam());
  for (int i = 0; i < 2000; ++i) {
    opt.zero_grad();
    sum_all(square(x)).backward();
    opt.step();
  }
  for (const float v : x.data()) {
    EXPECT_LT(std::fabs(v), 0.05F);
  }
}

INSTANTIATE_TEST_SUITE_P(LearningRates, AdamLrSweep,
                         ::testing::Values(0.01F, 0.03F, 0.1F));

// --- CE patterns: exposure fraction tracks the Bernoulli probability ----------
class RandomPatternSweep : public ::testing::TestWithParam<float> {};

TEST_P(RandomPatternSweep, ExposureFractionNearP) {
  const float p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p * 1000.0F));
  const auto pattern = ce::CePattern::random(16, 8, rng, p);
  EXPECT_NEAR(pattern.exposure_fraction(), p, 0.1F);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, RandomPatternSweep,
                         ::testing::Values(0.1F, 0.3F, 0.5F, 0.7F, 0.9F));

// --- decorrelation loss: bounded in [0, 1] for any pattern/data ---------------
class DecorrelationBoundSweep : public ::testing::TestWithParam<int> {};

TEST_P(DecorrelationBoundSweep, LossWithinPearsonBounds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto pattern = ce::CePattern::random(8, 4, rng, 0.5F);
  const Tensor videos = Tensor::rand_uniform(Shape{4, 8, 16, 16}, rng);
  NoGradGuard guard;
  const float loss = ce::decorrelation_loss(ce::ce_encode(videos, pattern), 4).item();
  // Mean of squared correlation coefficients lies in [0, 1].
  EXPECT_GE(loss, 0.0F);
  EXPECT_LE(loss, 1.0F + 1e-4F);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecorrelationBoundSweep, ::testing::Range(10, 16));

// --- energy model: structural monotonicity -------------------------------------
class SlotSweep : public ::testing::TestWithParam<int> {};

TEST_P(SlotSweep, ConventionalEnergyLinearInSlots) {
  const int slots = GetParam();
  const energy::EnergyModel model;
  const double one = model.conventional_edge_energy_j(1000, 1,
                                                      energy::WirelessTech::kPassiveWifi);
  const double many = model.conventional_edge_energy_j(1000, slots,
                                                       energy::WirelessTech::kPassiveWifi);
  EXPECT_NEAR(many / one, static_cast<double>(slots), 1e-9);
}

TEST_P(SlotSweep, SnappixAlwaysCheaperThanConventional) {
  const int slots = GetParam();
  if (slots < 2) {
    GTEST_SKIP() << "compression needs at least 2 slots to win";
  }
  const energy::EnergyModel model;
  for (const auto tech :
       {energy::WirelessTech::kPassiveWifi, energy::WirelessTech::kLoraBackscatter}) {
    EXPECT_LT(model.snappix_edge_energy_j(1000, slots, tech),
              model.conventional_edge_energy_j(1000, slots, tech));
  }
}

INSTANTIATE_TEST_SUITE_P(Slots, SlotSweep, ::testing::Values(1, 2, 4, 8, 16, 32));

// --- metrics: PSNR symmetry and shift behaviour --------------------------------
TEST(MetricProperties, PsnrIsSymmetric) {
  Rng rng(20);
  const Tensor a = Tensor::rand_uniform(Shape{16}, rng);
  const Tensor b = Tensor::rand_uniform(Shape{16}, rng);
  EXPECT_FLOAT_EQ(eval::psnr_db(a, b), eval::psnr_db(b, a));
}

TEST(MetricProperties, PsnrDecreasesWithErrorMagnitude) {
  const Tensor target = Tensor::zeros(Shape{8});
  float previous = std::numeric_limits<float>::infinity();
  for (const float err : {0.01F, 0.05F, 0.2F, 0.5F}) {
    const float psnr = eval::psnr_db(Tensor::full(Shape{8}, err), target);
    EXPECT_LT(psnr, previous);
    previous = psnr;
  }
}

// --- sensor: capture determinism given identical seeds -------------------------
TEST(SensorProperties, CaptureDeterministicPerSeed) {
  Rng rng(30);
  const auto pattern = ce::CePattern::random(8, 4, rng, 0.5F);
  sensor::SensorConfig cfg;
  cfg.height = 16;
  cfg.width = 16;
  cfg.noise.enabled = true;
  cfg.adc.full_scale = cfg.electrons_per_unit * 8;
  cfg.pixel.full_well_electrons = cfg.adc.full_scale;
  const Tensor scene = Tensor::rand_uniform(Shape{8, 16, 16}, rng);
  sensor::StackedSensor s1(cfg, pattern);
  sensor::StackedSensor s2(cfg, pattern);
  Rng r1(99);
  Rng r2(99);
  EXPECT_TRUE(allclose(s1.capture(scene, r1), s2.capture(scene, r2)));
}

// --- end-to-end linearity: darker scenes never brighten coded pixels -----------
TEST(CeProperties, EncodeMonotoneInIntensity) {
  Rng rng(40);
  const auto pattern = ce::CePattern::random(8, 4, rng, 0.5F);
  const Tensor bright = Tensor::rand_uniform(Shape{1, 8, 16, 16}, rng, 0.5F, 1.0F);
  const Tensor dark = mul_scalar(bright, 0.5F);
  NoGradGuard guard;
  const Tensor coded_bright = ce::ce_encode(bright, pattern);
  const Tensor coded_dark = ce::ce_encode(dark, pattern);
  for (std::size_t i = 0; i < coded_bright.data().size(); ++i) {
    EXPECT_LE(coded_dark.data()[i], coded_bright.data()[i] + 1e-6F);
  }
}

}  // namespace
}  // namespace snappix
