// Streaming runtime tests: queue semantics, batching determinism against the
// sequential tape path, the fused engine's bit-exactness contract, and a
// 4-camera end-to-end smoke test over all camera adapters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/snappix.h"
#include "runtime/batcher.h"
#include "runtime/camera.h"
#include "runtime/engine.h"
#include "runtime/frame_queue.h"
#include "runtime/runtime.h"
#include "runtime/stats.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace snappix {
namespace {

using runtime::BatchAggregator;
using runtime::BatchPolicy;
using runtime::Frame;
using runtime::FrameQueue;

Frame make_frame(int camera, std::int64_t sequence) {
  Frame frame;
  frame.camera_id = camera;
  frame.sequence = sequence;
  frame.coded = Tensor::full(Shape{4, 4}, static_cast<float>(sequence));
  return frame;
}

core::SnapPixConfig small_system_config() {
  core::SnapPixConfig cfg;
  cfg.image = 16;
  cfg.frames = 8;
  cfg.num_classes = 4;
  cfg.seed = 3;
  return cfg;
}

data::SceneConfig small_scene() {
  data::SceneConfig scene;
  scene.frames = 8;
  scene.height = 16;
  scene.width = 16;
  scene.num_classes = 4;
  return scene;
}

// --- FrameQueue --------------------------------------------------------------

TEST(FrameQueue, PreservesFifoOrder) {
  FrameQueue queue(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.push(make_frame(0, i)));
  }
  queue.close();
  Frame out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.sequence, i);
  }
  EXPECT_FALSE(queue.pop(out));  // closed and drained
}

TEST(FrameQueue, PushBlocksWhenFullUntilPopped) {
  FrameQueue queue(2);
  ASSERT_TRUE(queue.push(make_frame(0, 0)));
  ASSERT_TRUE(queue.push(make_frame(0, 1)));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(make_frame(0, 2)));  // must block on the full queue
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(third_pushed.load());  // backpressure held the producer
  Frame out;
  ASSERT_TRUE(queue.pop(out));
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(queue.depth(), 2U);
  EXPECT_EQ(queue.high_water_mark(), 2U);
}

TEST(FrameQueue, CloseUnblocksProducerAndConsumer) {
  FrameQueue queue(1);
  ASSERT_TRUE(queue.push(make_frame(0, 0)));
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
  });
  EXPECT_FALSE(queue.push(make_frame(0, 1)));  // blocked, then failed on close
  closer.join();
  Frame out;
  EXPECT_TRUE(queue.pop(out));   // drains the remaining frame
  EXPECT_FALSE(queue.pop(out));  // then reports closed
  EXPECT_FALSE(queue.push(make_frame(0, 2)));
}

TEST(FrameQueue, PopUntilTimesOutOnEmptyQueue) {
  FrameQueue queue(2);
  Frame out;
  const auto t0 = runtime::Clock::now();
  EXPECT_FALSE(queue.pop_until(out, t0 + std::chrono::milliseconds(15)));
  EXPECT_GE(runtime::Clock::now() - t0, std::chrono::milliseconds(10));
}

// --- ThreadPool --------------------------------------------------------------

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

// --- BatchAggregator ---------------------------------------------------------

TEST(BatchAggregator, RespectsMaxBatchAndFifo) {
  FrameQueue queue(16);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(queue.push(make_frame(i % 2, i)));
  }
  queue.close();
  BatchPolicy policy;
  policy.max_batch = 3;
  BatchAggregator aggregator(queue, policy);
  std::vector<Frame> batch;
  std::vector<std::int64_t> order;
  std::vector<std::size_t> sizes;
  while (aggregator.next_batch(batch)) {
    sizes.push_back(batch.size());
    for (const Frame& f : batch) {
      order.push_back(f.sequence);
    }
  }
  EXPECT_EQ(sizes, (std::vector<std::size_t>{3, 3, 1}));
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(BatchAggregator, GreedyPolicyNeverWaits) {
  FrameQueue queue(16);
  ASSERT_TRUE(queue.push(make_frame(0, 0)));
  BatchPolicy policy;
  policy.max_batch = 8;
  policy.max_delay = std::chrono::microseconds(0);
  BatchAggregator aggregator(queue, policy);
  std::vector<Frame> batch;
  const auto t0 = runtime::Clock::now();
  ASSERT_TRUE(aggregator.next_batch(batch));
  EXPECT_LT(runtime::Clock::now() - t0, std::chrono::milliseconds(100));
  EXPECT_EQ(batch.size(), 1U);
  queue.close();
}

TEST(BatchAggregator, StackMatchesFrameContents) {
  std::vector<Frame> frames = {make_frame(0, 3), make_frame(1, 5)};
  const Tensor stacked = BatchAggregator::stack_coded(frames);
  EXPECT_EQ(stacked.shape(), (Shape{2, 4, 4}));
  EXPECT_FLOAT_EQ(stacked.at({0, 0, 0}), 3.0F);
  EXPECT_FLOAT_EQ(stacked.at({1, 3, 3}), 5.0F);
}

// --- fused engine bit-exactness ----------------------------------------------

TEST(BatchedVitEngine, BitIdenticalToTapeFramework) {
  core::SnapPixSystem system(small_system_config());
  runtime::BatchedVitEngine engine(*system.classifier(), 8);
  Rng rng(11);
  const Tensor batch = Tensor::rand_uniform(Shape{8, 16, 16}, rng);
  const Tensor tape = system.classify_logits_coded(batch);
  const Tensor fused = engine.classify_logits(batch);
  ASSERT_EQ(tape.shape(), fused.shape());
  for (std::size_t i = 0; i < tape.data().size(); ++i) {
    ASSERT_EQ(tape.data()[i], fused.data()[i]) << "logit " << i << " diverges";
  }
}

TEST(BatchedVitEngine, BatchSizeDoesNotChangeBits) {
  core::SnapPixSystem system(small_system_config());
  runtime::BatchedVitEngine engine(*system.classifier(), 8);
  Rng rng(13);
  const Tensor batch = Tensor::rand_uniform(Shape{5, 16, 16}, rng);
  const Tensor batched = engine.classify_logits(batch);
  for (std::int64_t b = 0; b < 5; ++b) {
    std::vector<float> one(batch.data().begin() + b * 256,
                           batch.data().begin() + (b + 1) * 256);
    const Tensor single =
        engine.classify_logits(Tensor::from_vector(std::move(one), Shape{1, 16, 16}));
    for (std::int64_t c = 0; c < 4; ++c) {
      ASSERT_EQ(single.data()[static_cast<std::size_t>(c)],
                batched.data()[static_cast<std::size_t>(b * 4 + c)]);
    }
  }
}

TEST(BatchedVitEngine, ChunksOversizedBatches) {
  core::SnapPixSystem system(small_system_config());
  runtime::BatchedVitEngine small_ws(*system.classifier(), 2);
  runtime::BatchedVitEngine large_ws(*system.classifier(), 16);
  Rng rng(17);
  const Tensor batch = Tensor::rand_uniform(Shape{7, 16, 16}, rng);
  const Tensor chunked = small_ws.classify_logits(batch);
  const Tensor whole = large_ws.classify_logits(batch);
  for (std::size_t i = 0; i < whole.data().size(); ++i) {
    ASSERT_EQ(chunked.data()[i], whole.data()[i]);
  }
}

// --- batched serving entry points --------------------------------------------

TEST(SnapPixSystemCoded, CodedEntryPointsMatchVideoPaths) {
  core::SnapPixSystem system(small_system_config());
  Rng rng(19);
  const Tensor videos = Tensor::rand_uniform(Shape{3, 8, 16, 16}, rng);
  const Tensor coded = system.encode(videos);  // already exposure-normalized
  // classify/reconstruct on pre-coded frames must equal the video paths.
  EXPECT_EQ(system.classify_coded(coded), system.classify(videos));
  const Tensor via_video = system.reconstruct(videos);
  const Tensor via_coded = system.reconstruct_coded(coded);
  ASSERT_EQ(via_video.shape(), via_coded.shape());
  for (std::size_t i = 0; i < via_video.data().size(); ++i) {
    ASSERT_EQ(via_video.data()[i], via_coded.data()[i]);
  }
}

// --- cameras -----------------------------------------------------------------

TEST(CameraSource, SyntheticIsDeterministicGivenSeed) {
  const ce::CePattern pattern = ce::CePattern::long_exposure(8, 8);
  runtime::SyntheticCameraSource a(0, small_scene(), pattern, 99);
  runtime::SyntheticCameraSource b(0, small_scene(), pattern, 99);
  for (int i = 0; i < 3; ++i) {
    const Frame fa = a.next_frame();
    const Frame fb = b.next_frame();
    EXPECT_EQ(fa.sequence, i);
    EXPECT_EQ(fa.label, fb.label);
    EXPECT_EQ(fa.coded.data(), fb.coded.data());
  }
}

TEST(CameraSource, ReplayLoopsRecordedFrames) {
  const ce::CePattern pattern = ce::CePattern::long_exposure(8, 8);
  runtime::SyntheticCameraSource source(2, small_scene(), pattern, 5);
  auto replay = runtime::ReplayCameraSource::record(source, 3);
  std::vector<std::vector<float>> first_pass;
  for (int i = 0; i < 3; ++i) {
    first_pass.push_back(replay->next_frame().coded.data());
  }
  for (int i = 0; i < 3; ++i) {  // second lap replays the same bytes
    EXPECT_EQ(replay->next_frame().coded.data(), first_pass[static_cast<std::size_t>(i)]);
  }
}

TEST(CameraSource, SensorCameraReportsSimulatedWireBytes) {
  core::SnapPixSystem system(small_system_config());
  Rng rng(23);
  const ce::CePattern pattern = ce::CePattern::random(8, 8, rng, 0.5F);
  runtime::SensorCameraSource camera(1, system.default_sensor_config(), small_scene(),
                                     pattern, 77);
  const Frame frame = camera.next_frame();
  EXPECT_EQ(frame.coded.shape(), (Shape{16, 16}));
  EXPECT_GT(frame.wire_bytes, 0U);
  EXPECT_EQ(frame.raw_bytes, frame.wire_bytes * 8U);  // T = 8 readout reduction
}

// --- end-to-end --------------------------------------------------------------

// Batched async serving must produce exactly the predictions of the
// sequential single-camera path, frame for frame.
TEST(StreamingRuntime, BatchedMatchesSequentialPath) {
  core::SnapPixSystem system(small_system_config());
  Rng rng(29);
  // A non-trivial pattern so encode/normalize paths are exercised.
  system.set_pattern(ce::CePattern::random(8, 8, rng, 0.5F));

  const std::int64_t frames_per_camera = 6;
  runtime::RuntimeConfig config;
  config.batch.max_batch = 4;
  runtime::StreamingRuntime rt(system, config);
  for (int cam = 0; cam < 4; ++cam) {
    rt.add_camera(std::make_unique<runtime::SyntheticCameraSource>(
        cam, small_scene(), system.pattern(), 500 + static_cast<std::uint64_t>(cam)));
  }
  const auto batched = rt.run(frames_per_camera);
  ASSERT_EQ(batched.size(), 24U);

  // Sequential reference: identical cameras (same seeds), tape-based batch-1.
  NoGradGuard guard;
  std::size_t i = 0;
  for (int cam = 0; cam < 4; ++cam) {
    runtime::SyntheticCameraSource camera(cam, small_scene(), system.pattern(),
                                          500 + static_cast<std::uint64_t>(cam));
    for (std::int64_t f = 0; f < frames_per_camera; ++f, ++i) {
      const Frame frame = camera.next_frame();
      const Tensor one = Tensor::from_vector(frame.coded.data(), Shape{1, 16, 16});
      const auto predicted = system.classify_coded(one)[0];
      EXPECT_EQ(batched[i].camera_id, cam);
      EXPECT_EQ(batched[i].sequence, f);
      EXPECT_EQ(batched[i].predicted, predicted)
          << "camera " << cam << " frame " << f << " diverged from sequential path";
      EXPECT_EQ(batched[i].label, frame.label);
    }
  }
}

TEST(StreamingRuntime, FourCameraSmokeAllAdapterKinds) {
  core::SnapPixSystem system(small_system_config());
  auto dataset_config = data::ucf101_like(/*frames=*/8, /*size=*/16);
  dataset_config.scene.num_classes = 4;
  dataset_config.train_per_class = 1;
  dataset_config.test_per_class = 3;
  auto dataset = std::make_shared<const data::VideoDataset>(dataset_config);

  runtime::RuntimeConfig config;
  config.batch.max_batch = 4;
  config.queue_capacity = 8;
  runtime::StreamingRuntime rt(system, config);
  rt.add_camera(std::make_unique<runtime::SyntheticCameraSource>(0, small_scene(),
                                                                 system.pattern(), 1));
  rt.add_camera(
      std::make_unique<runtime::DatasetCameraSource>(1, dataset, system.pattern(), 1));
  rt.add_camera(std::make_unique<runtime::SensorCameraSource>(
      2, system.default_sensor_config(), small_scene(), system.pattern(), 2));
  {
    runtime::SyntheticCameraSource source(3, small_scene(), system.pattern(), 3);
    rt.add_camera(runtime::ReplayCameraSource::record(source, 4));
  }

  const std::int64_t frames_per_camera = 5;
  const auto results = rt.run(frames_per_camera);
  ASSERT_EQ(results.size(), 20U);
  for (int cam = 0; cam < 4; ++cam) {
    for (std::int64_t f = 0; f < frames_per_camera; ++f) {
      const auto& r = results[static_cast<std::size_t>(cam) * 5 + static_cast<std::size_t>(f)];
      EXPECT_EQ(r.camera_id, cam);
      EXPECT_EQ(r.sequence, f);
      EXPECT_GE(r.predicted, 0);
      EXPECT_LT(r.predicted, 4);
    }
  }

  const auto summary = rt.summary();
  EXPECT_EQ(summary.frames, 20U);
  EXPECT_GT(summary.batches, 0U);
  EXPECT_GT(summary.aggregate_fps, 0.0);
  EXPECT_GT(summary.compression_ratio, 1.0);  // CE shipped less than raw video
  EXPECT_EQ(summary.end_to_end.count, 20U);

  const auto energy =
      rt.fleet_energy(energy::EnergyModel{}, energy::WirelessTech::kPassiveWifi);
  EXPECT_GT(energy.conventional_j, energy.snappix_j);  // Sec. VI-D direction
  EXPECT_GT(energy.saving_factor, 1.0);
}

TEST(StreamingRuntime, RunIsOneShot) {
  core::SnapPixSystem system(small_system_config());
  runtime::StreamingRuntime rt(system, {});
  rt.add_camera(std::make_unique<runtime::SyntheticCameraSource>(0, small_scene(),
                                                                 system.pattern(), 1));
  (void)rt.run(1);
  EXPECT_THROW(rt.run(1), std::runtime_error);
}

// --- stats -------------------------------------------------------------------

TEST(RuntimeStats, PercentilesAndSummary) {
  // LatencySeries is a view over a fixed-bucket obs::Histogram: percentiles
  // are interpolated within the rank's bucket and clamped to the observed
  // [min, max], so they are bucket-resolution estimates, not exact order
  // statistics. The mean is exact (sum / count).
  runtime::LatencySeries series;
  for (int i = 1; i <= 100; ++i) {
    series.record(static_cast<double>(i) * 1e-3);
  }
  EXPECT_EQ(series.count(), 100U);
  EXPECT_NEAR(series.mean(), 0.0505, 1e-9);
  // 50 ms sits in the (20 ms, 50 ms] bucket; 99 ms in (50 ms, 100 ms]. The
  // interpolated estimates must land in the right bucket and stay ordered.
  EXPECT_GT(series.percentile(50.0), 0.020);
  EXPECT_LE(series.percentile(50.0), 0.050 + 1e-12);
  EXPECT_GT(series.percentile(99.0), 0.050);
  EXPECT_LE(series.percentile(99.0), 0.100 + 1e-12);
  EXPECT_LE(series.percentile(50.0), series.percentile(95.0));
  EXPECT_LE(series.percentile(95.0), series.percentile(99.0));

  runtime::RuntimeStats stats;
  stats.record_batch(4, 0.002);
  stats.record_batch(2, 0.001);
  for (int i = 0; i < 6; ++i) {
    stats.record_frame_done(/*raw=*/1000, /*wire=*/125, /*e2e=*/0.01);
  }
  const auto summary = stats.summary(/*wall_seconds=*/2.0);
  EXPECT_EQ(summary.frames, 6U);
  EXPECT_EQ(summary.batches, 2U);
  EXPECT_NEAR(summary.mean_batch_size, 3.0, 1e-9);
  EXPECT_NEAR(summary.aggregate_fps, 3.0, 1e-9);
  EXPECT_NEAR(summary.compression_ratio, 8.0, 1e-9);
}

}  // namespace
}  // namespace snappix
