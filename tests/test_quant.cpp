// Quantized serving tier tests: per-channel quantize/dequantize round-trip
// bounds, int8 GEMM exactness against the scalar reference, calibration
// determinism, the QuantizedVitEngine's determinism/batch-invariance
// contracts, precision-keyed caching, config validation, and a mixed
// fp32/int8 heterogeneous fleet through the sharded InferenceServer.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/snappix.h"
#include "runtime/camera.h"
#include "runtime/engine.h"
#include "runtime/engine_cache.h"
#include "runtime/quant.h"
#include "runtime/server.h"
#include "tensor/gemm_s8.h"
#include "util/rng.h"

namespace snappix {
namespace {

using runtime::EngineCache;
using runtime::EngineCacheConfig;
using runtime::InferenceServer;
using runtime::PatternRef;
using runtime::Precision;
using runtime::QuantCalibration;
using runtime::QuantizedVitEngine;
using runtime::QuantSpec;
using runtime::ServerConfig;
using runtime::Task;
using runtime::TaskResult;

core::SnapPixConfig small_system_config() {
  core::SnapPixConfig cfg;
  cfg.image = 16;
  cfg.frames = 8;
  cfg.num_classes = 4;
  cfg.seed = 3;
  return cfg;
}

data::SceneConfig small_scene() {
  data::SceneConfig scene;
  scene.frames = 8;
  scene.height = 16;
  scene.width = 16;
  scene.num_classes = 4;
  return scene;
}

bool specs_identical(const QuantSpec& a, const QuantSpec& b) {
  if (a.embed_in != b.embed_in || a.head_in != b.head_in || a.rec_in != b.rec_in ||
      a.blocks.size() != b.blocks.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    if (a.blocks[i].qkv_in != b.blocks[i].qkv_in ||
        a.blocks[i].proj_in != b.blocks[i].proj_in ||
        a.blocks[i].fc1_in != b.blocks[i].fc1_in ||
        a.blocks[i].gelu_in != b.blocks[i].gelu_in ||
        a.blocks[i].fc2_in != b.blocks[i].fc2_in) {
      return false;
    }
  }
  return true;
}

// --- quantization helpers ----------------------------------------------------

TEST(QuantizeSymmetric, RoundTripErrorBoundedByHalfStep) {
  Rng rng(11);
  const Tensor x = Tensor::randn(Shape{512}, rng, 2.0F);
  const float amax = detail::absmax(x.data().data(), 512);
  const float scale = detail::symmetric_scale(amax);
  std::vector<std::int8_t> q(512);
  detail::quantize_symmetric(x.data().data(), 512, scale, q.data());
  for (int i = 0; i < 512; ++i) {
    const float back = static_cast<float>(q[i]) * scale;
    // In-range values round to the nearest grid point: error <= scale/2.
    EXPECT_LE(std::fabs(back - x.data()[static_cast<std::size_t>(i)]),
              scale * 0.5F + 1e-6F)
        << "element " << i;
    EXPECT_GE(q[i], -127);
    EXPECT_LE(q[i], 127);
  }
}

TEST(QuantizeSymmetric, MatchesScalarReferenceIncludingClampAndTails) {
  Rng rng(13);
  // Odd length exercises the AVX2 tail; the huge values exercise the clamp
  // (including the positive-overflow path the fp pre-clamp guards).
  for (const std::int64_t n : {1, 7, 31, 32, 33, 100, 257}) {
    std::vector<float> x(static_cast<std::size_t>(n));
    for (auto& v : x) {
      v = (rng.uniform() - 0.5F) * 1000.0F;
    }
    x[0] = 1e30F;
    if (n > 2) {
      x[1] = -1e30F;
      x[2] = 0.0F;
    }
    std::vector<std::int8_t> fast(static_cast<std::size_t>(n)),
        ref(static_cast<std::size_t>(n));
    detail::quantize_symmetric(x.data(), n, 0.37F, fast.data());
    detail::quantize_symmetric_ref(x.data(), n, 0.37F, ref.data());
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(fast[static_cast<std::size_t>(i)], ref[static_cast<std::size_t>(i)])
          << "n=" << n << " i=" << i << " x=" << x[static_cast<std::size_t>(i)];
    }
  }
}

TEST(RequantizeRows, MatchesScalarReferenceIncludingClampAndTails) {
  Rng rng(15);
  for (const auto& [rows, n] : std::vector<std::array<std::int64_t, 2>>{
           {1, 1}, {2, 31}, {3, 32}, {4, 33}, {2, 100}}) {
    std::vector<std::int32_t> acc(static_cast<std::size_t>(rows * n));
    std::vector<float> deq(static_cast<std::size_t>(n)), bias(static_cast<std::size_t>(n));
    for (auto& v : acc) {
      v = static_cast<std::int32_t>((rng.uniform() - 0.5F) * 2e6F);
    }
    for (auto& v : deq) {
      v = rng.uniform(1e-4F, 1e-2F);
    }
    for (auto& v : bias) {
      v = rng.uniform(-1.0F, 1.0F);
    }
    acc[0] = 2000000000;  // clamp path, both signs
    if (acc.size() > 1) {
      acc[1] = -2000000000;
    }
    std::vector<std::int8_t> fast(acc.size()), ref(acc.size());
    detail::requantize_rows(acc.data(), deq.data(), bias.data(), 3.7F, fast.data(), rows, n);
    detail::requantize_rows_ref(acc.data(), deq.data(), bias.data(), 3.7F, ref.data(), rows,
                                n);
    for (std::size_t i = 0; i < fast.size(); ++i) {
      ASSERT_EQ(fast[i], ref[i]) << "rows=" << rows << " n=" << n << " i=" << i;
    }
  }
}

TEST(QuantizeWeights, PerChannelScalesAndTransposedLayout) {
  Rng rng(17);
  const std::int64_t k = 5, n = 3;
  const Tensor w = Tensor::randn(Shape{k, n}, rng);
  std::vector<std::int8_t> wq(static_cast<std::size_t>(n * k));
  std::vector<float> scales(static_cast<std::size_t>(n));
  detail::quantize_weights_per_channel(w.data().data(), k, n, wq.data(), scales.data());
  for (std::int64_t j = 0; j < n; ++j) {
    float amax = 0.0F;
    for (std::int64_t l = 0; l < k; ++l) {
      amax = std::max(amax, std::fabs(w.data()[static_cast<std::size_t>(l * n + j)]));
    }
    EXPECT_FLOAT_EQ(scales[static_cast<std::size_t>(j)], amax / 127.0F);
    for (std::int64_t l = 0; l < k; ++l) {
      const float back = static_cast<float>(wq[static_cast<std::size_t>(j * k + l)]) *
                         scales[static_cast<std::size_t>(j)];
      EXPECT_LE(std::fabs(back - w.data()[static_cast<std::size_t>(l * n + j)]),
                scales[static_cast<std::size_t>(j)] * 0.5F + 1e-7F);
    }
  }
}

// --- int8 GEMM ---------------------------------------------------------------

TEST(GemmS8, MatchesScalarReferenceExactly) {
  Rng rng(19);
  // Shapes straddle every tile boundary: row/channel/k tails, single rows,
  // and a size big enough to engage the parallel fan-out path.
  const std::vector<std::array<std::int64_t, 3>> shapes = {
      {1, 1, 1}, {2, 16, 4}, {3, 17, 5}, {8, 64, 48}, {33, 100, 7}, {130, 192, 67}};
  for (const auto& [m, k, n] : shapes) {
    std::vector<std::int8_t> a(static_cast<std::size_t>(m * k)),
        b(static_cast<std::size_t>(n * k));
    for (auto& v : a) {
      v = static_cast<std::int8_t>(static_cast<int>(rng.uniform() * 255.0F) - 127);
    }
    for (auto& v : b) {
      v = static_cast<std::int8_t>(static_cast<int>(rng.uniform() * 255.0F) - 127);
    }
    std::vector<std::int32_t> c(static_cast<std::size_t>(m * n), -1),
        expected(static_cast<std::size_t>(m * n), -1);
    detail::gemm_s8_nt(a.data(), b.data(), c.data(), m, k, n);
    detail::gemm_s8_nt_ref(a.data(), b.data(), expected.data(), m, k, n);
    for (std::int64_t i = 0; i < m * n; ++i) {
      ASSERT_EQ(c[static_cast<std::size_t>(i)], expected[static_cast<std::size_t>(i)])
          << "m=" << m << " k=" << k << " n=" << n << " i=" << i;
    }
  }
}

TEST(GemmS8, ExtremeValuesAccumulateExactly) {
  // Saturated operands at a k large enough to overflow int16 partial sums if
  // the kernel were careless: (-127 * -127) * 512 = 8,258,048.
  const std::int64_t m = 2, k = 512, n = 3;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k), -127),
      b(static_cast<std::size_t>(n * k), -127);
  std::vector<std::int32_t> c(static_cast<std::size_t>(m * n));
  detail::gemm_s8_nt(a.data(), b.data(), c.data(), m, k, n);
  for (const std::int32_t v : c) {
    EXPECT_EQ(v, 127 * 127 * 512);
  }
}

TEST(GemmS8, RejectsAccumulatorOverflowDepth) {
  // Beyond kGemmS8MaxK a single dot product can exceed int32
  // (127 * 127 * k > 2^31 - 1), so both kernels must refuse up front rather
  // than return silently wrapped accumulators.
  const std::int64_t k_bad = detail::kGemmS8MaxK + 1;
  std::vector<std::int8_t> a(static_cast<std::size_t>(k_bad), 1),
      b(static_cast<std::size_t>(k_bad), 1);
  std::vector<std::int32_t> c(1);
  EXPECT_THROW(detail::gemm_s8_nt(a.data(), b.data(), c.data(), 1, k_bad, 1),
               std::runtime_error);
  EXPECT_THROW(detail::gemm_s8_nt_ref(a.data(), b.data(), c.data(), 1, k_bad, 1),
               std::runtime_error);

  // The boundary itself is serviceable — and exact: a 1 x kMaxK dot product
  // of all-ones is just kMaxK.
  const std::int64_t k_ok = detail::kGemmS8MaxK;
  detail::gemm_s8_nt(a.data(), b.data(), c.data(), 1, k_ok, 1);
  EXPECT_EQ(c[0], static_cast<std::int32_t>(k_ok));
}

// --- calibration -------------------------------------------------------------

TEST(Calibration, DeterministicForFixedInputAndSeed) {
  core::SnapPixSystem system(small_system_config());
  const Tensor frames = runtime::make_calibration_frames(system.pattern(), 16, 16, {});
  const QuantSpec spec_a =
      runtime::calibrate(*system.classifier(), *system.reconstructor(), frames);
  const Tensor frames_again = runtime::make_calibration_frames(system.pattern(), 16, 16, {});
  const QuantSpec spec_b =
      runtime::calibrate(*system.classifier(), *system.reconstructor(), frames_again);
  EXPECT_TRUE(specs_identical(spec_a, spec_b));
  EXPECT_EQ(spec_a.blocks.size(),
            static_cast<std::size_t>(system.classifier()->encoder()->config().depth));
  EXPECT_GT(spec_a.embed_in, 0.0F);
  EXPECT_GT(spec_a.rec_in, 0.0F);

  // A different seed sees different scenes, hence (generically) other scales.
  QuantCalibration other;
  other.seed = 777;
  const Tensor frames_other = runtime::make_calibration_frames(system.pattern(), 16, 16, other);
  const QuantSpec spec_c =
      runtime::calibrate(*system.classifier(), *system.reconstructor(), frames_other);
  EXPECT_FALSE(specs_identical(spec_a, spec_c));
}

TEST(Calibration, RejectsEmptyOrMisshapenInput) {
  core::SnapPixSystem system(small_system_config());
  Rng rng(23);
  EXPECT_THROW(runtime::calibrate(*system.classifier(), *system.reconstructor(),
                                  Tensor::rand_uniform(Shape{2, 8, 8}, rng)),
               std::invalid_argument);
  QuantCalibration zero;
  zero.frames = 0;
  EXPECT_THROW(runtime::make_calibration_frames(system.pattern(), 16, 16, zero),
               std::invalid_argument);
}

// --- QuantizedVitEngine ------------------------------------------------------

class QuantEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    system_ = std::make_unique<core::SnapPixSystem>(small_system_config());
    const Tensor frames =
        runtime::make_calibration_frames(system_->pattern(), 16, 16, {});
    spec_ = runtime::calibrate(*system_->classifier(), *system_->reconstructor(), frames);
    Rng rng(29);
    coded_ = Tensor::rand_uniform(Shape{6, 16, 16}, rng);
  }

  std::unique_ptr<core::SnapPixSystem> system_;
  QuantSpec spec_;
  Tensor coded_;
};

TEST_F(QuantEngineTest, BatchInvariantToTheBit) {
  QuantizedVitEngine engine(*system_->classifier(), *system_->reconstructor(), spec_, 8);
  const Tensor batched_logits = engine.classify_logits(coded_);
  const Tensor batched_video = engine.reconstruct(coded_);
  for (std::int64_t i = 0; i < coded_.shape()[0]; ++i) {
    const Tensor one = Tensor::from_vector(
        std::vector<float>(coded_.data().begin() + i * 256,
                           coded_.data().begin() + (i + 1) * 256),
        Shape{1, 16, 16});
    const Tensor single_logits = engine.classify_logits(one);
    for (std::int64_t c = 0; c < 4; ++c) {
      ASSERT_EQ(single_logits.data()[static_cast<std::size_t>(c)],
                batched_logits.data()[static_cast<std::size_t>(i * 4 + c)])
          << "frame " << i << " class " << c;
    }
    const Tensor single_video = engine.reconstruct(one);
    const std::int64_t elems = single_video.numel();
    for (std::int64_t v = 0; v < elems; ++v) {
      ASSERT_EQ(single_video.data()[static_cast<std::size_t>(v)],
                batched_video.data()[static_cast<std::size_t>(i * elems + v)])
          << "frame " << i << " voxel " << v;
    }
  }
}

TEST_F(QuantEngineTest, DeterministicAcrossSeparatelyBuiltEngines) {
  // Two engines from the same spec — the evict-and-rebuild scenario — must
  // serve bit-identical int8 results (and chunked != unchunked must not
  // matter either: max_batch 3 forces two chunks for the 6-frame batch).
  QuantizedVitEngine a(*system_->classifier(), *system_->reconstructor(), spec_, 8);
  QuantizedVitEngine b(*system_->classifier(), *system_->reconstructor(), spec_, 3);
  const Tensor la = a.classify_logits(coded_);
  const Tensor lb = b.classify_logits(coded_);
  for (std::size_t i = 0; i < la.data().size(); ++i) {
    ASSERT_EQ(la.data()[i], lb.data()[i]);
  }
  const Tensor va = a.reconstruct(coded_);
  const Tensor vb = b.reconstruct(coded_);
  for (std::size_t i = 0; i < va.data().size(); ++i) {
    ASSERT_EQ(va.data()[i], vb.data()[i]);
  }
}

TEST_F(QuantEngineTest, TracksTheFp32EngineClosely) {
  runtime::BatchedVitEngine fp32(*system_->classifier(), *system_->reconstructor(), 8);
  QuantizedVitEngine int8(*system_->classifier(), *system_->reconstructor(), spec_, 8);
  // Calibration-distribution frames (the representative case, not the
  // uniform-noise one): quantization error must stay small relative to the
  // logit scale.
  QuantCalibration eval;
  eval.seed = 424242;
  eval.frames = 16;
  const Tensor eval_frames = runtime::make_calibration_frames(system_->pattern(), 16, 16, eval);
  const Tensor lf = fp32.classify_logits(eval_frames);
  const Tensor lq = int8.classify_logits(eval_frames);
  float max_abs_logit = 0.0F, max_err = 0.0F;
  for (std::size_t i = 0; i < lf.data().size(); ++i) {
    max_abs_logit = std::max(max_abs_logit, std::fabs(lf.data()[i]));
    max_err = std::max(max_err, std::fabs(lf.data()[i] - lq.data()[i]));
  }
  EXPECT_GT(max_abs_logit, 0.0F);
  EXPECT_LT(max_err, 0.1F * std::max(1.0F, max_abs_logit))
      << "int8 logits drifted more than 10% of the fp32 logit scale";
  EXPECT_EQ(int8.precision(), Precision::kInt8);
  EXPECT_EQ(fp32.precision(), Precision::kFp32);
}

TEST_F(QuantEngineTest, RejectsSpecFromAnotherDepth) {
  QuantSpec wrong = spec_;
  wrong.blocks.pop_back();
  EXPECT_THROW(QuantizedVitEngine(*system_->classifier(), wrong, 4), std::runtime_error);
}

// --- precision-keyed EngineCache --------------------------------------------

TEST(EngineCachePrecision, TiersAreDistinctResidentsWithSplitCounters) {
  core::SnapPixSystem system(small_system_config());
  const Tensor frames = runtime::make_calibration_frames(system.pattern(), 16, 16, {});
  const QuantSpec spec =
      runtime::calibrate(*system.classifier(), *system.reconstructor(), frames);
  EngineCacheConfig cfg;
  cfg.shards = 1;
  cfg.capacity_per_shard = 4;
  EngineCache cache(cfg, [&](const ce::CePattern&,
                             Precision precision) -> std::shared_ptr<runtime::VitEngine> {
    if (precision == Precision::kFp32) {
      return std::make_shared<runtime::BatchedVitEngine>(*system.classifier(), 4);
    }
    return std::make_shared<QuantizedVitEngine>(*system.classifier(), spec, 4);
  });
  const PatternRef pattern = system.pattern_ref();
  const auto fp32_entry = cache.resolve(system.pattern_hash(), pattern, Precision::kFp32);
  const auto int8_entry = cache.resolve(system.pattern_hash(), pattern, Precision::kInt8);
  EXPECT_NE(fp32_entry->engine.get(), int8_entry->engine.get());
  EXPECT_EQ(fp32_entry->precision, Precision::kFp32);
  EXPECT_EQ(int8_entry->precision, Precision::kInt8);
  EXPECT_EQ(cache.resident(), 2U);

  cache.resolve(system.pattern_hash(), pattern, Precision::kFp32);  // hit
  cache.resolve(system.pattern_hash(), pattern, Precision::kInt8);  // hit
  const auto fp32_counters = cache.counters(Precision::kFp32);
  const auto int8_counters = cache.counters(Precision::kInt8);
  EXPECT_EQ(fp32_counters.hits, 1U);
  EXPECT_EQ(fp32_counters.misses, 1U);
  EXPECT_EQ(int8_counters.hits, 1U);
  EXPECT_EQ(int8_counters.misses, 1U);
  EXPECT_EQ(cache.counters().hits, 2U);
  EXPECT_EQ(cache.counters().misses, 2U);
}

// --- ServerConfig validation -------------------------------------------------

TEST(ServerValidation, RejectsInt8OnTapeBackendAndZeroCalibrationFrames) {
  ServerConfig tape_int8;
  tape_int8.backend = runtime::InferenceBackend::kTapeFramework;
  tape_int8.precision = Precision::kInt8;
  EXPECT_THROW(runtime::validate(tape_int8), std::invalid_argument);

  ServerConfig zero_calib;
  zero_calib.calibration.frames = 0;
  EXPECT_THROW(runtime::validate(zero_calib), std::invalid_argument);

  core::SnapPixSystem system(small_system_config());
  ServerConfig tape;
  tape.backend = runtime::InferenceBackend::kTapeFramework;
  InferenceServer server(system, tape);
  auto camera = std::make_unique<runtime::SyntheticCameraSource>(0, small_scene(),
                                                                 system.pattern_ref(), 91);
  camera->set_precision(Precision::kInt8);
  EXPECT_THROW(server.add_camera(std::move(camera)), std::invalid_argument);
}

// --- mixed-precision fleet through the sharded server ------------------------

TEST(MixedPrecisionFleet, Fp32CamerasBitExactInt8CamerasEngineExact) {
  core::SnapPixSystem system(small_system_config());
  Rng pattern_rng(97);
  std::vector<PatternRef> patterns;
  for (int p = 0; p < 3; ++p) {
    patterns.push_back(
        runtime::make_pattern_ref(ce::CePattern::random(8, 8, pattern_rng, 0.5F)));
  }

  // 6 cameras over 3 patterns; odd cameras serve int8, the last camera of
  // each parity runs REC. Replay sources so both server runs (and the direct
  // engine checks) see the same bytes.
  const std::int64_t frames_per_camera = 12;
  std::vector<std::vector<Tensor>> streams;
  std::vector<std::vector<std::int64_t>> labels;
  for (int cam = 0; cam < 6; ++cam) {
    runtime::SyntheticCameraSource source(cam, small_scene(),
                                          patterns[static_cast<std::size_t>(cam % 3)],
                                          500 + static_cast<std::uint64_t>(cam));
    std::vector<Tensor> coded;
    std::vector<std::int64_t> lab;
    for (std::int64_t i = 0; i < frames_per_camera; ++i) {
      runtime::Frame frame = source.next_frame();
      coded.push_back(std::move(frame.coded));
      lab.push_back(frame.label);
    }
    streams.push_back(std::move(coded));
    labels.push_back(std::move(lab));
  }

  const auto make_fleet_camera = [&](int cam) {
    auto camera = std::make_unique<runtime::ReplayCameraSource>(
        cam, patterns[static_cast<std::size_t>(cam % 3)],
        streams[static_cast<std::size_t>(cam)], labels[static_cast<std::size_t>(cam)]);
    if (cam % 2 == 1) {
      camera->set_precision(Precision::kInt8);
    }
    if (cam >= 4) {
      camera->set_task(Task::kReconstruct);
    }
    return camera;
  };

  const auto run_fleet = [&](std::size_t shards) {
    ServerConfig cfg;
    cfg.batch.max_batch = 4;
    cfg.shards = shards;
    InferenceServer server(system, cfg);
    for (int cam = 0; cam < 6; ++cam) {
      server.add_camera(make_fleet_camera(cam));
    }
    auto results = server.run(frames_per_camera);
    return std::make_pair(std::move(results), server.summary());
  };

  auto [single, single_summary] = run_fleet(1);
  auto [sharded, sharded_summary] = run_fleet(3);

  // Shard count must not change a bit — int8 engines are deterministic and
  // rebuild identically from the seeded calibration.
  ASSERT_EQ(single.size(), sharded.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    ASSERT_EQ(single[i].camera_id, sharded[i].camera_id);
    ASSERT_EQ(single[i].sequence, sharded[i].sequence);
    ASSERT_EQ(single[i].precision, sharded[i].precision);
    ASSERT_EQ(single[i].predicted, sharded[i].predicted) << "result " << i;
    if (single[i].task == Task::kReconstruct) {
      const auto& va = single[i].reconstruction.data();
      const auto& vb = sharded[i].reconstruction.data();
      ASSERT_EQ(va.size(), vb.size());
      for (std::size_t v = 0; v < va.size(); ++v) {
        ASSERT_EQ(va[v], vb[v]);
      }
    }
  }

  // Per-tier accounting: 3 fp32 cameras and 3 int8 cameras, 12 frames each.
  EXPECT_EQ(single_summary.fp32_frames, 36U);
  EXPECT_EQ(single_summary.int8_frames, 36U);
  EXPECT_GT(single_summary.cache_fp32.misses, 0U);
  EXPECT_GT(single_summary.cache_int8.misses, 0U);
  EXPECT_EQ(single_summary.cache_fp32.hits + single_summary.cache_int8.hits,
            single_summary.cache_hits);

  // fp32 cameras must be bit-identical to the sequential tape paths; int8
  // cameras must match a directly-built engine using the server's own
  // calibration recipe (same seeded frames -> same spec -> same bits).
  NoGradGuard guard;
  ServerConfig defaults;
  for (const TaskResult& result : single) {
    const int cam = result.camera_id;
    const Tensor& coded = streams[static_cast<std::size_t>(cam)]
                                 [static_cast<std::size_t>(result.sequence)];
    const Tensor one =
        Tensor::from_vector(coded.data(), Shape{1, coded.shape()[0], coded.shape()[1]});
    if (result.precision == Precision::kFp32) {
      if (result.task == Task::kClassify) {
        EXPECT_EQ(result.predicted, system.classify_coded(one)[0]);
      } else {
        const Tensor expected = system.reconstruct_coded(one);
        ASSERT_EQ(result.reconstruction.data().size(), expected.data().size());
        for (std::size_t v = 0; v < expected.data().size(); ++v) {
          ASSERT_EQ(result.reconstruction.data()[v], expected.data()[v]);
        }
      }
    } else {
      const ce::CePattern& pattern = *patterns[static_cast<std::size_t>(cam % 3)];
      const Tensor calib_frames =
          runtime::make_calibration_frames(pattern, 16, 16, defaults.calibration);
      const QuantSpec spec =
          runtime::calibrate(*system.classifier(), *system.reconstructor(), calib_frames);
      const QuantizedVitEngine engine(*system.classifier(), *system.reconstructor(), spec,
                                      4);
      if (result.task == Task::kClassify) {
        EXPECT_EQ(result.predicted, engine.classify(one)[0]);
      } else {
        const Tensor expected = engine.reconstruct(one);
        ASSERT_EQ(result.reconstruction.data().size(), expected.data().size());
        for (std::size_t v = 0; v < expected.data().size(); ++v) {
          ASSERT_EQ(result.reconstruction.data()[v], expected.data()[v]);
        }
      }
    }
  }
}

}  // namespace
}  // namespace snappix
