// Numerical gradient checking shared by the autograd tests.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace snappix::testing {

// Compares the analytic gradient of `fn` (a scalar-valued function of the
// given leaves) against central differences. Returns the max absolute error.
inline float max_grad_error(const std::function<Tensor()>& fn, std::vector<Tensor> leaves,
                            float eps = 1e-3F) {
  // Analytic pass.
  for (auto& leaf : leaves) {
    leaf.zero_grad();
  }
  Tensor loss = fn();
  loss.backward();
  std::vector<std::vector<float>> analytic;
  analytic.reserve(leaves.size());
  for (auto& leaf : leaves) {
    analytic.push_back(leaf.grad().data());
  }
  // Numeric pass.
  float max_err = 0.0F;
  for (std::size_t l = 0; l < leaves.size(); ++l) {
    auto& data = leaves[l].data();
    for (std::size_t i = 0; i < data.size(); ++i) {
      const float saved = data[i];
      data[i] = saved + eps;
      const float up = fn().item();
      data[i] = saved - eps;
      const float down = fn().item();
      data[i] = saved;
      const float numeric = (up - down) / (2.0F * eps);
      max_err = std::max(max_err, std::fabs(numeric - analytic[l][i]));
    }
  }
  return max_err;
}

}  // namespace snappix::testing
