// Transport test suite: golden CSI-2 packet layouts (byte-exact header / CRC
// vectors), header-ECC correction behavior, packetize -> depacketize
// round-trip bit-identity across frame sizes and lane counts, the
// deterministic fault-injection matrix (each fault class -> its expected
// Depacketizer outcome), and the FramedLink's byte/lane/outcome accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "codec/bitplane.h"
#include "runtime/camera.h"
#include "runtime/frame.h"
#include "sensor/mipi.h"
#include "transport/csi2.h"
#include "transport/fault.h"
#include "transport/link.h"
#include "util/rng.h"

namespace snappix {
namespace {

using transport::CodedFramePacketizer;
using transport::Depacketizer;
using transport::EccDecode;
using transport::FaultConfig;
using transport::FaultInjector;
using transport::FramedLink;
using transport::LinkConfig;
using transport::Packet;
using transport::RxFrame;
using transport::RxOutcome;
using transport::TransferResult;
using transport::WireFrame;

// --- integrity primitives ----------------------------------------------------

TEST(Crc16, MatchesSpecCheckValue) {
  // CRC-16/CCITT-FALSE over "123456789" is 0x29B1 in every published table.
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(transport::crc16_ccitt(check, sizeof(check)), 0x29B1);
  EXPECT_EQ(transport::crc16_ccitt(nullptr, 0), 0xFFFF);  // init value
  // Any single-bit change moves the CRC.
  std::uint8_t flipped[sizeof(check)];
  std::memcpy(flipped, check, sizeof(check));
  flipped[4] ^= 0x10;
  EXPECT_NE(transport::crc16_ccitt(flipped, sizeof(check)), 0x29B1);
}

TEST(Crc16, MatchesBitSerialReferenceOnEdgePayloads) {
  // Bit-serial CRC-16/CCITT-FALSE reference: processes one input BIT per
  // step, entirely in unsigned arithmetic. Any promotion/shift slip in the
  // byte-at-a-time production code (uint16 << 8 silently promotes to signed
  // int, UB at bit 31 without the explicit uint32 accumulator it now uses)
  // diverges from this on dense-MSB payloads like all-0xFF.
  const auto reference = [](const std::uint8_t* data, std::size_t size) {
    std::uint32_t crc = 0xFFFFU;
    for (std::size_t i = 0; i < size; ++i) {
      for (int bit = 7; bit >= 0; --bit) {
        const std::uint32_t in = (static_cast<std::uint32_t>(data[i]) >> bit) & 1U;
        const std::uint32_t top = (crc >> 15) & 1U;
        crc = (crc << 1) & 0xFFFFU;
        if (top != in) {
          crc ^= 0x1021U;
        }
      }
    }
    return static_cast<std::uint16_t>(crc);
  };

  // All-0xFF keeps the accumulator's top bit set on nearly every step — the
  // exact payload shape that exercised the old signed-promotion hazard.
  for (const std::size_t len : {1U, 2U, 15U, 64U, 257U}) {
    const std::vector<std::uint8_t> ones(len, 0xFF);
    EXPECT_EQ(transport::crc16_ccitt(ones.data(), len), reference(ones.data(), len))
        << "all-0xFF length " << len;
  }
  // And a deterministic mixed payload for good measure.
  std::vector<std::uint8_t> mixed(129);
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    mixed[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  EXPECT_EQ(transport::crc16_ccitt(mixed.data(), mixed.size()),
            reference(mixed.data(), mixed.size()));
}

TEST(HeaderEcc, CleanHeaderDecodesClean) {
  for (const std::uint32_t header : {0x000000U, 0xFFFFFFU, 0x300830U, 0x123456U}) {
    const std::uint8_t ecc = transport::ecc_encode(header);
    const EccDecode dec = transport::ecc_decode(header, ecc);
    EXPECT_EQ(dec.status, EccDecode::Status::kClean);
    EXPECT_EQ(dec.header24, header);
  }
}

TEST(HeaderEcc, CorrectsEverySingleBitFlip) {
  const std::uint32_t header = 0x30A55AU;
  const std::uint8_t ecc = transport::ecc_encode(header);
  for (int bit = 0; bit < 24; ++bit) {  // data bits
    const EccDecode dec = transport::ecc_decode(header ^ (1U << bit), ecc);
    ASSERT_EQ(dec.status, EccDecode::Status::kCorrected) << "data bit " << bit;
    ASSERT_EQ(dec.header24, header) << "data bit " << bit;
  }
  for (int bit = 0; bit < 6; ++bit) {  // ECC bits themselves
    const EccDecode dec =
        transport::ecc_decode(header, static_cast<std::uint8_t>(ecc ^ (1U << bit)));
    ASSERT_EQ(dec.status, EccDecode::Status::kCorrected) << "ecc bit " << bit;
    ASSERT_EQ(dec.header24, header) << "ecc bit " << bit;
  }
}

TEST(HeaderEcc, DetectsDoubleBitFlips) {
  // Every double flip over the WHOLE 30-bit received word (24 data bits +
  // 6 ECC bits, including the overall-parity bit) must be detected as
  // uncorrectable or — at minimum — never silently hand back wrong data.
  const std::uint32_t header = 0x30A55AU;
  const std::uint8_t ecc = transport::ecc_encode(header);
  int uncorrectable = 0;
  int miscorrected = 0;
  const auto decode_with_flips = [&](int a, int b) {
    std::uint32_t h = header;
    std::uint8_t e = ecc;
    for (const int bit : {a, b}) {
      if (bit < 24) {
        h ^= 1U << bit;
      } else {
        e = static_cast<std::uint8_t>(e ^ (1U << (bit - 24)));
      }
    }
    return transport::ecc_decode(h, e);
  };
  for (int a = 0; a < 30; ++a) {
    for (int b = a + 1; b < 30; ++b) {
      const EccDecode dec = decode_with_flips(a, b);
      if (dec.status == EccDecode::Status::kUncorrectable) {
        ++uncorrectable;
      } else if (dec.header24 != header) {
        ++miscorrected;  // silently wrong data would defeat the whole point
      }
    }
  }
  EXPECT_EQ(uncorrectable, 30 * 29 / 2);  // SEC-DED: every double flip detected
  EXPECT_EQ(miscorrected, 0);
}

// --- golden packet layout ----------------------------------------------------

TEST(PacketLayout, GoldenShortPacketBytes) {
  // Frame Start, virtual channel 1, frame number 5:
  //   DI = (1 << 6) | 0x00, value little-endian, 6-bit SEC-DED ECC.
  const Packet fs = CodedFramePacketizer::short_packet(0x40, 5);
  EXPECT_EQ(fs, (Packet{0x40, 0x05, 0x00, 0x29}));
  const Packet fe = CodedFramePacketizer::short_packet(0x41, 5);
  EXPECT_EQ(fe, (Packet{0x41, 0x05, 0x00, 0x0A}));
}

TEST(PacketLayout, GoldenLongPacketBytes) {
  // RAW32 row of two floats {1.0f, -2.0f} on virtual channel 0:
  //   header [0x30, wc=8 LE, ECC=0x32], IEEE-754 payload, CRC-16 0x5545 LE.
  const float row[2] = {1.0F, -2.0F};
  const Packet lp = CodedFramePacketizer::long_packet(
      transport::kDtRaw32, reinterpret_cast<const std::uint8_t*>(row), 8);
  EXPECT_EQ(lp, (Packet{0x30, 0x08, 0x00, 0x32,              // header + ECC
                        0x00, 0x00, 0x80, 0x3F,              // 1.0f
                        0x00, 0x00, 0x00, 0xC0,              // -2.0f
                        0x45, 0x55}));                       // CRC-16/CCITT-FALSE
}

TEST(PacketLayout, FrameStructureAndByteBudget) {
  Rng rng(3);
  const Tensor coded = Tensor::rand_uniform(Shape{4, 6}, rng);
  CodedFramePacketizer packetizer(/*virtual_channel=*/2);
  const WireFrame wire = packetizer.packetize(coded, 77);
  ASSERT_EQ(wire.packets.size(), 6U);  // FS + 4 rows + FE
  EXPECT_EQ(wire.packets.front().size(), 4U);
  EXPECT_EQ(wire.packets.back().size(), 4U);
  for (std::size_t r = 1; r + 1 < wire.packets.size(); ++r) {
    EXPECT_EQ(wire.packets[r].size(), 4U + 6 * 4 + 2U);
    EXPECT_EQ(wire.packets[r][0], 0x80 | 0x30);  // VC 2 in DI bits 7..6
  }
  EXPECT_EQ(wire.total_bytes(), 2 * 4U + 4 * (4 + 24 + 2U));
  EXPECT_EQ(wire.payload_bytes(), 4 * 24U);
}

TEST(PacketLayout, RejectsBadGeometry) {
  EXPECT_THROW(CodedFramePacketizer(4), std::runtime_error);  // VC out of range
  CodedFramePacketizer packetizer;
  Rng rng(5);
  EXPECT_THROW(packetizer.packetize(Tensor::rand_uniform(Shape{2, 3, 4}, rng), 0),
               std::runtime_error);  // not (H, W)
}

// --- round trip --------------------------------------------------------------

struct Geometry {
  std::int64_t height;
  std::int64_t width;
  int lanes;
};

class RoundTripTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(RoundTripTest, PacketizeDepacketizeIsBitIdentical) {
  const Geometry g = GetParam();
  Rng rng(static_cast<std::uint64_t>(g.height * 100 + g.width * 10 + g.lanes));
  const Tensor coded = Tensor::rand_uniform(Shape{g.height, g.width}, rng, -3.0F, 3.0F);

  CodedFramePacketizer packetizer(/*virtual_channel=*/1);
  Depacketizer depacketizer;
  const WireFrame wire = packetizer.packetize(coded, 123);
  const RxFrame rx = depacketizer.depacketize(wire, g.height, g.width);
  ASSERT_EQ(rx.outcome, RxOutcome::kOk);
  EXPECT_EQ(rx.frame_number, 123);
  EXPECT_EQ(rx.lines_received, static_cast<std::uint32_t>(g.height));
  EXPECT_EQ(rx.crc_errors, 0U);
  EXPECT_EQ(rx.corrected_headers, 0U);
  ASSERT_EQ(rx.coded.shape(), coded.shape());
  for (std::size_t i = 0; i < coded.data().size(); ++i) {
    ASSERT_EQ(rx.coded.data()[i], coded.data()[i]) << "pixel " << i;
  }

  // Through the clean FramedLink the lane count changes time, never bits.
  LinkConfig link_cfg;
  link_cfg.mipi.lanes = g.lanes;
  link_cfg.virtual_channel = 1;
  FramedLink link(link_cfg);
  const TransferResult result = link.transfer(coded, 123);
  ASSERT_EQ(result.outcome, RxOutcome::kOk);
  EXPECT_EQ(result.wire_bytes, wire.total_bytes());
  for (std::size_t i = 0; i < coded.data().size(); ++i) {
    ASSERT_EQ(result.coded.data()[i], coded.data()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, RoundTripTest,
                         ::testing::Values(Geometry{1, 1, 1}, Geometry{16, 16, 1},
                                           Geometry{16, 16, 2}, Geometry{16, 16, 4},
                                           Geometry{7, 5, 2}, Geometry{32, 8, 4},
                                           Geometry{3, 17, 4}));

// --- fault matrix: each fault class -> its expected outcome ------------------

class FaultMatrixTest : public ::testing::Test {
 protected:
  FaultMatrixTest() {
    Rng rng(11);
    coded_ = Tensor::rand_uniform(Shape{8, 8}, rng);
    wire_ = CodedFramePacketizer(0).packetize(coded_, 9);
  }
  RxFrame receive() const { return Depacketizer().depacketize(wire_, 8, 8); }

  Tensor coded_;
  WireFrame wire_;  // FS + 8 rows + FE; packets[1..8] are the rows
};

TEST_F(FaultMatrixTest, PayloadBitFlipIsCrcError) {
  wire_.packets[3][transport::kHeaderBytes + 5] ^= 0x04;
  const RxFrame rx = receive();
  EXPECT_EQ(rx.outcome, RxOutcome::kCrcError);
  EXPECT_EQ(rx.crc_errors, 1U);
  EXPECT_EQ(rx.lines_received, 8U);  // geometry complete, payload damaged
}

TEST_F(FaultMatrixTest, CrcFooterBitFlipIsCrcError) {
  wire_.packets[5].back() ^= 0x80;
  EXPECT_EQ(receive().outcome, RxOutcome::kCrcError);
}

TEST_F(FaultMatrixTest, SingleHeaderBitFlipIsCorrectedToOk) {
  wire_.packets[4][1] ^= 0x01;  // word-count byte takes a hit
  const RxFrame rx = receive();
  EXPECT_EQ(rx.outcome, RxOutcome::kOk);  // ECC repaired it: frame intact
  EXPECT_EQ(rx.corrected_headers, 1U);
  for (std::size_t i = 0; i < coded_.data().size(); ++i) {
    ASSERT_EQ(rx.coded.data()[i], coded_.data()[i]);
  }
}

TEST_F(FaultMatrixTest, ReservedEccBitFlipLosesTheLine) {
  // The ECC byte's two reserved (always-zero) bits are outside the Hamming
  // code's reach: a flip there cannot be repaired, only rejected.
  wire_.packets[4][3] ^= 0x40;
  const RxFrame rx = receive();
  EXPECT_EQ(rx.outcome, RxOutcome::kMissingLines);
  EXPECT_EQ(rx.lost_packets, 1U);
  EXPECT_EQ(rx.corrected_headers, 0U);
}

TEST_F(FaultMatrixTest, DoubleHeaderBitFlipLosesTheLine) {
  wire_.packets[4][0] ^= 0x01;
  wire_.packets[4][2] ^= 0x40;
  const RxFrame rx = receive();
  EXPECT_EQ(rx.outcome, RxOutcome::kMissingLines);
  EXPECT_EQ(rx.lost_packets, 1U);
  EXPECT_EQ(rx.lines_received, 7U);
}

TEST_F(FaultMatrixTest, DroppedRowPacketIsMissingLines) {
  wire_.packets.erase(wire_.packets.begin() + 2);
  const RxFrame rx = receive();
  EXPECT_EQ(rx.outcome, RxOutcome::kMissingLines);
  EXPECT_EQ(rx.lines_received, 7U);
}

TEST_F(FaultMatrixTest, DroppedFrameStartIsTruncated) {
  wire_.packets.erase(wire_.packets.begin());
  EXPECT_EQ(receive().outcome, RxOutcome::kTruncated);
}

TEST_F(FaultMatrixTest, DroppedFrameEndIsTruncated) {
  wire_.packets.pop_back();
  EXPECT_EQ(receive().outcome, RxOutcome::kTruncated);
}

TEST_F(FaultMatrixTest, LaneStallMidPacketIsTruncated) {
  wire_.packets[6].resize(transport::kHeaderBytes + 10);  // tail cut mid-payload
  EXPECT_EQ(receive().outcome, RxOutcome::kTruncated);
}

TEST_F(FaultMatrixTest, StreamDyingMidHeaderIsTruncated) {
  wire_.packets[6].resize(2);
  EXPECT_EQ(receive().outcome, RxOutcome::kTruncated);
}

// --- seeded injector ---------------------------------------------------------

TEST(FaultInjector, ValidatesRates) {
  FaultConfig bad;
  bad.packet_drop_rate = 1.5;
  EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
  bad.packet_drop_rate = -0.1;
  EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
}

TEST(FaultInjector, ZeroRatesAreACountedNoOp) {
  Rng rng(13);
  const Tensor coded = Tensor::rand_uniform(Shape{4, 4}, rng);
  WireFrame wire = CodedFramePacketizer(0).packetize(coded, 1);
  const WireFrame original = wire;
  FaultInjector injector{FaultConfig{}};
  EXPECT_FALSE(injector.apply(wire));
  EXPECT_EQ(injector.stats().frames, 1U);
  EXPECT_EQ(injector.stats().frames_faulted, 0U);
  ASSERT_EQ(wire.packets.size(), original.packets.size());
  for (std::size_t i = 0; i < wire.packets.size(); ++i) {
    EXPECT_EQ(wire.packets[i], original.packets[i]);
  }
}

// The same seed must reproduce the exact same corruption — outcomes, counters
// and bytes — across independent injector instances.
TEST(FaultInjector, SeededFaultsAreDeterministicAcrossRuns) {
  FaultConfig cfg;
  cfg.bit_flip_per_byte = 0.002;
  cfg.packet_drop_rate = 0.05;
  cfg.lane_stall_rate = 0.02;
  cfg.seed = 99;

  const auto run = [&cfg] {
    Rng rng(17);
    FaultInjector injector(cfg);
    Depacketizer depacketizer;
    std::vector<RxOutcome> outcomes;
    for (int f = 0; f < 40; ++f) {
      const Tensor coded = Tensor::rand_uniform(Shape{8, 8}, rng);
      WireFrame wire = CodedFramePacketizer(0).packetize(
          coded, static_cast<std::uint16_t>(f));
      injector.apply(wire);
      outcomes.push_back(depacketizer.depacketize(wire, 8, 8).outcome);
    }
    return std::make_pair(outcomes, injector.stats());
  };

  const auto [outcomes_a, stats_a] = run();
  const auto [outcomes_b, stats_b] = run();
  EXPECT_EQ(outcomes_a, outcomes_b);
  EXPECT_EQ(stats_a.bits_flipped, stats_b.bits_flipped);
  EXPECT_EQ(stats_a.packets_dropped, stats_b.packets_dropped);
  EXPECT_EQ(stats_a.lane_stalls, stats_b.lane_stalls);
  EXPECT_EQ(stats_a.frames_faulted, stats_b.frames_faulted);
  EXPECT_GT(stats_a.frames_faulted, 0U);  // the rates actually did something
  int corrupted = 0;
  for (const RxOutcome outcome : outcomes_a) {
    corrupted += outcome != RxOutcome::kOk ? 1 : 0;
  }
  EXPECT_GT(corrupted, 0);
}

// Under drop-only faults, a frame is corrupt IFF the injector touched it —
// the exactness the serving-level drop counters are pinned to.
TEST(FaultInjector, DropOnlyFaultsCorruptExactlyTheFaultedFrames) {
  FaultConfig cfg;
  cfg.packet_drop_rate = 0.08;
  cfg.seed = 7;
  Rng rng(19);
  FaultInjector injector(cfg);
  Depacketizer depacketizer;
  std::uint64_t corrupt_frames = 0;
  for (int f = 0; f < 60; ++f) {
    const Tensor coded = Tensor::rand_uniform(Shape{6, 6}, rng);
    WireFrame wire =
        CodedFramePacketizer(0).packetize(coded, static_cast<std::uint16_t>(f));
    const bool faulted = injector.apply(wire);
    const RxOutcome outcome = depacketizer.depacketize(wire, 6, 6).outcome;
    ASSERT_EQ(faulted, outcome != RxOutcome::kOk) << "frame " << f;
    corrupt_frames += outcome != RxOutcome::kOk ? 1 : 0;
  }
  EXPECT_EQ(corrupt_frames, injector.stats().frames_faulted);
  EXPECT_GT(corrupt_frames, 0U);
}

// --- FramedLink accounting ---------------------------------------------------

TEST(FramedLinkTest, CleanTransferAccountsBytesAndOutcomes) {
  Rng rng(23);
  const Tensor coded = Tensor::rand_uniform(Shape{16, 16}, rng);
  LinkConfig cfg;
  cfg.mipi.lanes = 2;
  FramedLink link(cfg);
  const TransferResult result = link.transfer(coded, 0);
  ASSERT_EQ(result.outcome, RxOutcome::kOk);
  // FS + FE (4 bytes each) + 16 rows of (4 + 64 + 2).
  const std::uint64_t expected = 2 * 4U + 16 * (4 + 64 + 2U);
  EXPECT_EQ(result.wire_bytes, expected);
  EXPECT_EQ(link.mipi().total_bytes(), expected);
  EXPECT_EQ(link.mipi().payload_bytes(), 16 * 64U);
  EXPECT_EQ(link.mipi().packets(), 18U);
  EXPECT_EQ(link.counters().frames, 1U);
  EXPECT_EQ(link.counters().ok_frames, 1U);
  // Lane accounting: every packet striped over 2 lanes, per-packet ceilings.
  EXPECT_EQ(link.mipi().lane_bytes(0), 2 * 2U + 16 * 35U);
  EXPECT_EQ(link.mipi().lane_bytes(1), 2 * 2U + 16 * 35U);
}

// Retransmit accounting exactness (the bugfix audit): every attempt pays the
// wire exactly once — total bytes, per-lane bytes, and the frame counter all
// scale linearly in the attempt count, with no double-charging and no
// forgiveness for repeated payloads.
TEST(FramedLinkTest, RepeatedTransfersChargeTheWireOncePerAttempt) {
  Rng rng(37);
  const Tensor coded = Tensor::rand_uniform(Shape{8, 8}, rng);
  LinkConfig cfg;
  cfg.mipi.lanes = 2;
  FramedLink link(cfg);
  const TransferResult first = link.transfer(coded, 0);
  ASSERT_EQ(first.outcome, RxOutcome::kOk);
  const std::uint64_t per_attempt = first.wire_bytes;
  const std::uint64_t lane0 = link.mipi().lane_bytes(0);
  const std::uint64_t lane1 = link.mipi().lane_bytes(1);
  const int attempts = 5;
  for (int a = 1; a < attempts; ++a) {
    const TransferResult again = link.transfer(coded, 0);  // same frame, retried
    EXPECT_EQ(again.wire_bytes, per_attempt);
  }
  EXPECT_EQ(link.mipi().total_bytes(), attempts * per_attempt);
  EXPECT_EQ(link.mipi().lane_bytes(0), attempts * lane0);
  EXPECT_EQ(link.mipi().lane_bytes(1), attempts * lane1);
  EXPECT_EQ(link.counters().frames, static_cast<std::uint64_t>(attempts));
  EXPECT_EQ(link.counters().ok_frames, static_cast<std::uint64_t>(attempts));
}

TEST(FramedLinkTest, FaultyTransfersLandInOutcomeCounters) {
  Rng rng(29);
  LinkConfig cfg;
  cfg.faults.packet_drop_rate = 0.10;
  cfg.faults.seed = 31;
  FramedLink link(cfg);
  for (int f = 0; f < 30; ++f) {
    (void)link.transfer(Tensor::rand_uniform(Shape{6, 6}, rng),
                        static_cast<std::uint16_t>(f));
  }
  const auto& counters = link.counters();
  EXPECT_EQ(counters.frames, 30U);
  EXPECT_EQ(counters.ok_frames + counters.crc_error_frames + counters.truncated_frames +
                counters.missing_line_frames,
            30U);
  EXPECT_LT(counters.ok_frames, 30U);  // the drop rate bit someone
  EXPECT_EQ(30U - counters.ok_frames, link.injector().stats().frames_faulted);
}

// --- entropy-coded wire mode -------------------------------------------------

TEST(CodecWire, FrameStructureCarriesHeaderAndPlanePackets) {
  Rng rng(41);
  const Tensor coded = Tensor::rand_uniform(Shape{8, 8}, rng, -1.0F, 1.0F);
  const codec::PlaneStream stream = codec::encode_bitplanes(codec::quantize_frame(coded));
  CodedFramePacketizer packetizer(/*virtual_channel=*/1);
  const WireFrame wire = packetizer.packetize_codec(coded, 42);
  // FS + stream header + one packet per plane chunk + FE.
  ASSERT_EQ(wire.packets.size(), 3U + stream.planes.size());
  EXPECT_EQ(wire.packets.front()[0] & 0x3F, transport::kDtFrameStart);
  EXPECT_EQ(wire.packets.back()[0] & 0x3F, transport::kDtFrameEnd);
  const Packet& header = wire.packets[1];
  EXPECT_EQ(header[0] & 0x3F, transport::kDtCodecHeader);
  EXPECT_EQ(header.size(), 4U + codec::kStreamHeaderBytes + 2U);
  for (std::size_t p = 0; p < stream.planes.size(); ++p) {
    const Packet& packet = wire.packets[2 + p];
    EXPECT_EQ(packet[0] & 0x3F, transport::kDtCodecPlane);
    EXPECT_EQ(packet[0] >> 6, 1);  // virtual channel rides along
    // Payload: one index byte + the chunk's entropy-coded bytes.
    EXPECT_EQ(packet.size(), 4U + 1U + stream.planes[p].size() + 2U);
    EXPECT_EQ(packet[4], static_cast<std::uint8_t>(p));
  }
}

TEST(CodecWire, CleanRoundTripMatchesInMemoryQuantizeExactly) {
  Rng rng(43);
  const Tensor coded = Tensor::rand_uniform(Shape{16, 16}, rng, -2.0F, 2.0F);
  const Tensor reference = codec::dequantize_frame(codec::quantize_frame(coded));

  CodedFramePacketizer packetizer(0);
  Depacketizer depacketizer;
  const WireFrame wire = packetizer.packetize_codec(coded, 7);
  const transport::RxCodecFrame rx = depacketizer.depacketize_codec(wire, 16, 16);
  ASSERT_EQ(rx.outcome, RxOutcome::kOk);
  EXPECT_EQ(rx.frame_number, 7);
  EXPECT_EQ(rx.decoded_planes, rx.total_planes);
  ASSERT_EQ(rx.coded.shape(), reference.shape());
  EXPECT_EQ(std::memcmp(rx.coded.data().data(), reference.data().data(),
                        reference.data().size() * sizeof(float)),
            0);

  // Same guarantee through the clean FramedLink in codec mode.
  LinkConfig cfg;
  cfg.codec = true;
  FramedLink link(cfg);
  const TransferResult result = link.transfer(coded, 7);
  ASSERT_EQ(result.outcome, RxOutcome::kOk);
  EXPECT_EQ(result.decoded_planes, result.total_planes);
  EXPECT_GT(result.total_planes, 0);
  EXPECT_EQ(std::memcmp(result.coded.data().data(), reference.data().data(),
                        reference.data().size() * sizeof(float)),
            0);
  // The entropy-coded wire beats raw float32 framing on bytes.
  LinkConfig raw_cfg;
  FramedLink raw_link(raw_cfg);
  const TransferResult raw = raw_link.transfer(coded, 7);
  EXPECT_LT(result.wire_bytes, raw.wire_bytes);
}

TEST(CodecWire, TruncatedDepthShrinksWireAndMatchesCappedDecode) {
  Rng rng(47);
  const Tensor coded = Tensor::rand_uniform(Shape{12, 12}, rng, -1.0F, 1.0F);
  const codec::QuantizedFrame q = codec::quantize_frame(coded);
  const codec::PlaneStream full_stream = codec::encode_bitplanes(q);
  ASSERT_GT(full_stream.plane_count, 4);
  const int depth = full_stream.plane_count / 2;

  LinkConfig cfg;
  cfg.codec = true;
  FramedLink full_link(cfg);
  const TransferResult full = full_link.transfer(coded, 1);
  ASSERT_EQ(full.outcome, RxOutcome::kOk);

  cfg.codec_planes = depth;
  FramedLink capped_link(cfg);
  const TransferResult capped = capped_link.transfer(coded, 1);
  ASSERT_EQ(capped.outcome, RxOutcome::kOk);
  EXPECT_EQ(capped.decoded_planes, depth);
  EXPECT_EQ(capped.total_planes, full_stream.plane_count);
  // Truncation is transmit-side: genuinely fewer bytes on the wire.
  EXPECT_LT(capped.wire_bytes, full.wire_bytes);
  // And the received pixels equal the in-memory depth-capped decode.
  const Tensor reference =
      codec::dequantize_frame(codec::decode_bitplanes(full_stream, depth).frame);
  EXPECT_EQ(std::memcmp(capped.coded.data().data(), reference.data().data(),
                        reference.data().size() * sizeof(float)),
            0);

  // The cap is adjustable per frame: resetting to full depth restores the
  // lossless round trip on the same link.
  capped_link.set_codec_planes(0);
  const TransferResult restored = capped_link.transfer(coded, 2);
  ASSERT_EQ(restored.outcome, RxOutcome::kOk);
  EXPECT_EQ(restored.decoded_planes, restored.total_planes);
  EXPECT_THROW(capped_link.set_codec_planes(-1), std::invalid_argument);
  EXPECT_THROW(capped_link.set_codec_planes(codec::kMaxBitplanes + 1),
               std::invalid_argument);
}

// Fault matrix for the codec wire: each damage class lands on its documented
// classification, and no corruption ever crashes the decoder.
TEST(CodecWire, FaultMatrixClassifiesDamage) {
  Rng rng(53);
  const Tensor coded = Tensor::rand_uniform(Shape{8, 8}, rng, -1.0F, 1.0F);
  CodedFramePacketizer packetizer(0);
  Depacketizer depacketizer;
  const WireFrame golden = packetizer.packetize_codec(coded, 3);
  ASSERT_GT(golden.packets.size(), 4U);

  {  // dropped frame start -> truncated
    WireFrame wire = golden;
    wire.packets.erase(wire.packets.begin());
    EXPECT_EQ(depacketizer.depacketize_codec(wire, 8, 8).outcome, RxOutcome::kTruncated);
  }
  {  // dropped stream header -> truncated (nothing can be decoded)
    WireFrame wire = golden;
    wire.packets.erase(wire.packets.begin() + 1);
    EXPECT_EQ(depacketizer.depacketize_codec(wire, 8, 8).outcome, RxOutcome::kTruncated);
  }
  {  // header for the wrong geometry -> truncated
    WireFrame wire = golden;
    const auto rx = depacketizer.depacketize_codec(wire, 4, 4);
    EXPECT_EQ(rx.outcome, RxOutcome::kTruncated);
  }
  {  // dropped MSB plane packet -> missing lines (a needed plane never came)
    WireFrame wire = golden;
    wire.packets.erase(wire.packets.begin() + 2);
    const auto rx = depacketizer.depacketize_codec(wire, 8, 8);
    EXPECT_EQ(rx.outcome, RxOutcome::kMissingLines);
    EXPECT_EQ(rx.decoded_planes, 0);
  }
  {  // payload bit flip in a plane packet -> CRC error, packet discarded whole
    WireFrame wire = golden;
    wire.packets[2][transport::kHeaderBytes + 1] ^= 0x10;
    const auto rx = depacketizer.depacketize_codec(wire, 8, 8);
    EXPECT_EQ(rx.outcome, RxOutcome::kCrcError);
    EXPECT_EQ(rx.crc_errors, 1U);
    EXPECT_EQ(rx.decoded_planes, 0);
  }
  {  // damage to a LATER plane than the cap requires does not demote kOk
    WireFrame wire = golden;
    wire.packets[wire.packets.size() - 2][transport::kHeaderBytes + 1] ^= 0x10;
    const auto rx = depacketizer.depacketize_codec(wire, 8, 8, /*max_planes=*/1);
    EXPECT_EQ(rx.outcome, RxOutcome::kOk);
    EXPECT_EQ(rx.decoded_planes, 1);
  }
}

// Seeded-injector sweep over codec frames: arbitrary corruption must always
// produce a sane classification and bounded plane counts — never UB, never a
// crash (the ASan/UBSan arms run this too).
TEST(CodecWire, InjectedFaultsAlwaysClassifySafely) {
  FaultConfig fault_cfg;
  fault_cfg.bit_flip_per_byte = 0.004;
  fault_cfg.packet_drop_rate = 0.06;
  fault_cfg.lane_stall_rate = 0.03;
  fault_cfg.seed = 61;
  FaultInjector injector(fault_cfg);
  CodedFramePacketizer packetizer(0);
  Depacketizer depacketizer;
  Rng rng(59);
  int corrupt = 0;
  for (int f = 0; f < 60; ++f) {
    const Tensor coded = Tensor::rand_uniform(Shape{8, 8}, rng, -1.0F, 1.0F);
    WireFrame wire = packetizer.packetize_codec(coded, static_cast<std::uint16_t>(f));
    const bool faulted = injector.apply(wire);
    const auto rx = depacketizer.depacketize_codec(wire, 8, 8);
    EXPECT_LE(rx.decoded_planes, rx.total_planes == 0 ? codec::kMaxBitplanes
                                                      : rx.total_planes);
    ASSERT_EQ(rx.coded.shape(), (Shape{8, 8}));
    if (!faulted) {
      EXPECT_EQ(rx.outcome, RxOutcome::kOk) << "clean frame " << f << " misclassified";
    }
    corrupt += rx.outcome != RxOutcome::kOk ? 1 : 0;
  }
  EXPECT_GT(corrupt, 0);  // the rates actually exercised the paths
}

// --- construction validation -------------------------------------------------

// Every unusable LinkConfig/FaultConfig field is rejected with
// std::invalid_argument at construction — including NaN/inf rates, which a
// naive `rate < 0 || rate > 1` check lets straight through to the bernoulli
// draws.
TEST(LinkValidation, RejectsNonFiniteAndOutOfRangeFaultRates) {
  FaultConfig bad;
  bad.bit_flip_per_byte = std::nan("");
  EXPECT_THROW(transport::validate(bad), std::invalid_argument);
  EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);

  bad = FaultConfig{};
  bad.packet_drop_rate = std::numeric_limits<double>::infinity();
  EXPECT_THROW(transport::validate(bad), std::invalid_argument);

  bad = FaultConfig{};
  bad.lane_stall_rate = -0.25;
  EXPECT_THROW(transport::validate(bad), std::invalid_argument);

  // set_rates goes through the same gate: a running injector cannot be
  // flipped to garbage mid-chaos-schedule.
  FaultInjector injector{FaultConfig{}};
  FaultConfig nan_rates;
  nan_rates.bit_flip_per_byte = std::nan("");
  EXPECT_THROW(injector.set_rates(nan_rates), std::invalid_argument);
}

TEST(LinkValidation, RejectsUnusableLinkGeometry) {
  const LinkConfig good;
  EXPECT_NO_THROW(transport::validate(good));

  LinkConfig bad;
  bad.mipi.lanes = 0;
  EXPECT_THROW(transport::validate(bad), std::invalid_argument);
  // The FramedLink constructor throws the SAME type for the same reason —
  // construction order must not let an inner component reject it first with
  // a different exception.
  EXPECT_THROW(FramedLink{bad}, std::invalid_argument);

  bad = LinkConfig{};
  bad.mipi.lanes = 9;
  EXPECT_THROW(FramedLink{bad}, std::invalid_argument);

  bad = LinkConfig{};
  bad.mipi.byte_clock_hz = 0.0;
  EXPECT_THROW(FramedLink{bad}, std::invalid_argument);
  bad.mipi.byte_clock_hz = std::nan("");
  EXPECT_THROW(FramedLink{bad}, std::invalid_argument);

  bad = LinkConfig{};
  bad.virtual_channel = 4;
  EXPECT_THROW(FramedLink{bad}, std::invalid_argument);

  bad = LinkConfig{};
  bad.codec = true;
  bad.codec_planes = codec::kMaxBitplanes + 1;
  EXPECT_THROW(FramedLink{bad}, std::invalid_argument);

  bad = LinkConfig{};
  bad.faults.packet_drop_rate = 2.0;
  EXPECT_THROW(FramedLink{bad}, std::invalid_argument);
}

TEST(LinkValidation, SetFaultsSwapsRatesButKeepsSeedAndRngStream) {
  Rng rng(67);
  const Tensor coded = Tensor::rand_uniform(Shape{8, 8}, rng, -1.0F, 1.0F);

  LinkConfig cfg;
  cfg.faults.packet_drop_rate = 1.0;
  cfg.faults.seed = 99;
  FramedLink link(cfg);
  EXPECT_NE(link.transfer(coded, 0).outcome, RxOutcome::kOk);

  FaultConfig clean;
  clean.seed = 12345;  // ignored: the running injector keeps its own stream
  link.set_faults(clean);
  EXPECT_EQ(link.config().faults.packet_drop_rate, 0.0);
  EXPECT_EQ(link.config().faults.seed, 99U);
  EXPECT_EQ(link.transfer(coded, 1).outcome, RxOutcome::kOk);

  FaultConfig bad;
  bad.bit_flip_per_byte = -1.0;
  EXPECT_THROW(link.set_faults(bad), std::invalid_argument);
}

// --- codec-header damage under retransmit ------------------------------------

// A CRC-failed kDtCodecHeader packet is classified kTruncated (the stream
// header's bytes cannot be trusted, so nothing downstream is decodable) and
// counted as a CRC error — the classification TransportPolicy::kRetransmit
// keys the retry on.
TEST(CodecWire, CrcFailedHeaderPacketIsTruncatedAndCounted) {
  Rng rng(71);
  const Tensor coded = Tensor::rand_uniform(Shape{8, 8}, rng, -1.0F, 1.0F);
  CodedFramePacketizer packetizer(0);
  Depacketizer depacketizer;
  WireFrame wire = packetizer.packetize_codec(coded, 5);
  ASSERT_EQ(wire.packets[1][0] & 0x3F, transport::kDtCodecHeader);

  wire.packets[1][transport::kHeaderBytes] ^= 0x01;  // first payload byte
  const auto rx = depacketizer.depacketize_codec(wire, 8, 8);
  EXPECT_EQ(rx.outcome, RxOutcome::kTruncated);
  EXPECT_EQ(rx.crc_errors, 1U);
  EXPECT_EQ(rx.decoded_planes, 0);
}

// Retransmit recovery end to end: a camera on a seeded lossy codec link whose
// first transfer arrives corrupt recovers bit-identically through
// CameraSource::retransmit, and the frame's wire accounting charges every
// attempt — corrupt ones included — exactly once.
TEST(CodecWire, RetransmitRecoversBitIdenticallyAndChargesEveryAttempt) {
  Rng rng(73);
  const Tensor coded = Tensor::rand_uniform(Shape{8, 8}, rng, -1.0F, 1.0F);
  const Tensor reference = codec::dequantize_frame(codec::quantize_frame(coded));

  // The clean wire cost of this frame, for the accounting check below.
  LinkConfig clean_cfg;
  clean_cfg.codec = true;
  FramedLink clean_link(clean_cfg);
  const std::uint64_t clean_bytes = clean_link.transfer(coded, 0).wire_bytes;
  ASSERT_GT(clean_bytes, 0U);

  // Find a seed whose FIRST transfer corrupts and whose retries recover
  // within budget — purely deterministic given the seed, so the test never
  // flakes; the scan just avoids hand-tuning a magic constant.
  bool exercised = false;
  for (std::uint64_t seed = 1; seed <= 64 && !exercised; ++seed) {
    LinkConfig cfg;
    cfg.codec = true;
    cfg.faults.bit_flip_per_byte = 0.01;
    cfg.faults.packet_drop_rate = 0.05;
    cfg.faults.seed = seed;
    runtime::ReplayCameraSource camera(0, ce::CePattern::long_exposure(8, 8),
                                       std::vector<Tensor>{coded},
                                       std::vector<std::int64_t>{});
    camera.set_framed(cfg);

    runtime::Frame frame = camera.next_frame();
    if (!runtime::is_corrupt(frame.transport)) {
      continue;  // this seed's first attempt was clean; try another
    }
    int attempts = 1;
    while (runtime::is_corrupt(frame.transport) && frame.retransmits < 8) {
      camera.retransmit(frame);
      ++attempts;
    }
    if (runtime::is_corrupt(frame.transport)) {
      continue;  // still dead after 8 retries; try another seed
    }
    exercised = true;
    EXPECT_GE(frame.retransmits, 1);
    EXPECT_EQ(attempts, frame.retransmits + 1);
    // Bit-identity: the recovered payload equals the in-memory quantize round
    // trip — damage from the failed attempts must not leak into the frame.
    ASSERT_EQ(frame.coded.shape(), reference.shape());
    EXPECT_EQ(std::memcmp(frame.coded.data().data(), reference.data().data(),
                          reference.data().size() * sizeof(float)),
              0);
    // Wire accounting: every attempt crossed the wire and cost its bytes.
    EXPECT_EQ(frame.wire_bytes,
              clean_bytes * static_cast<std::uint64_t>(attempts));
  }
  ASSERT_TRUE(exercised) << "no seed in [1, 64] produced corrupt-then-recovered";
}

}  // namespace
}  // namespace snappix
