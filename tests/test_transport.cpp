// Transport test suite: golden CSI-2 packet layouts (byte-exact header / CRC
// vectors), header-ECC correction behavior, packetize -> depacketize
// round-trip bit-identity across frame sizes and lane counts, the
// deterministic fault-injection matrix (each fault class -> its expected
// Depacketizer outcome), and the FramedLink's byte/lane/outcome accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "sensor/mipi.h"
#include "transport/csi2.h"
#include "transport/fault.h"
#include "transport/link.h"
#include "util/rng.h"

namespace snappix {
namespace {

using transport::CodedFramePacketizer;
using transport::Depacketizer;
using transport::EccDecode;
using transport::FaultConfig;
using transport::FaultInjector;
using transport::FramedLink;
using transport::LinkConfig;
using transport::Packet;
using transport::RxFrame;
using transport::RxOutcome;
using transport::TransferResult;
using transport::WireFrame;

// --- integrity primitives ----------------------------------------------------

TEST(Crc16, MatchesSpecCheckValue) {
  // CRC-16/CCITT-FALSE over "123456789" is 0x29B1 in every published table.
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(transport::crc16_ccitt(check, sizeof(check)), 0x29B1);
  EXPECT_EQ(transport::crc16_ccitt(nullptr, 0), 0xFFFF);  // init value
  // Any single-bit change moves the CRC.
  std::uint8_t flipped[sizeof(check)];
  std::memcpy(flipped, check, sizeof(check));
  flipped[4] ^= 0x10;
  EXPECT_NE(transport::crc16_ccitt(flipped, sizeof(check)), 0x29B1);
}

TEST(Crc16, MatchesBitSerialReferenceOnEdgePayloads) {
  // Bit-serial CRC-16/CCITT-FALSE reference: processes one input BIT per
  // step, entirely in unsigned arithmetic. Any promotion/shift slip in the
  // byte-at-a-time production code (uint16 << 8 silently promotes to signed
  // int, UB at bit 31 without the explicit uint32 accumulator it now uses)
  // diverges from this on dense-MSB payloads like all-0xFF.
  const auto reference = [](const std::uint8_t* data, std::size_t size) {
    std::uint32_t crc = 0xFFFFU;
    for (std::size_t i = 0; i < size; ++i) {
      for (int bit = 7; bit >= 0; --bit) {
        const std::uint32_t in = (static_cast<std::uint32_t>(data[i]) >> bit) & 1U;
        const std::uint32_t top = (crc >> 15) & 1U;
        crc = (crc << 1) & 0xFFFFU;
        if (top != in) {
          crc ^= 0x1021U;
        }
      }
    }
    return static_cast<std::uint16_t>(crc);
  };

  // All-0xFF keeps the accumulator's top bit set on nearly every step — the
  // exact payload shape that exercised the old signed-promotion hazard.
  for (const std::size_t len : {1U, 2U, 15U, 64U, 257U}) {
    const std::vector<std::uint8_t> ones(len, 0xFF);
    EXPECT_EQ(transport::crc16_ccitt(ones.data(), len), reference(ones.data(), len))
        << "all-0xFF length " << len;
  }
  // And a deterministic mixed payload for good measure.
  std::vector<std::uint8_t> mixed(129);
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    mixed[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  EXPECT_EQ(transport::crc16_ccitt(mixed.data(), mixed.size()),
            reference(mixed.data(), mixed.size()));
}

TEST(HeaderEcc, CleanHeaderDecodesClean) {
  for (const std::uint32_t header : {0x000000U, 0xFFFFFFU, 0x300830U, 0x123456U}) {
    const std::uint8_t ecc = transport::ecc_encode(header);
    const EccDecode dec = transport::ecc_decode(header, ecc);
    EXPECT_EQ(dec.status, EccDecode::Status::kClean);
    EXPECT_EQ(dec.header24, header);
  }
}

TEST(HeaderEcc, CorrectsEverySingleBitFlip) {
  const std::uint32_t header = 0x30A55AU;
  const std::uint8_t ecc = transport::ecc_encode(header);
  for (int bit = 0; bit < 24; ++bit) {  // data bits
    const EccDecode dec = transport::ecc_decode(header ^ (1U << bit), ecc);
    ASSERT_EQ(dec.status, EccDecode::Status::kCorrected) << "data bit " << bit;
    ASSERT_EQ(dec.header24, header) << "data bit " << bit;
  }
  for (int bit = 0; bit < 6; ++bit) {  // ECC bits themselves
    const EccDecode dec =
        transport::ecc_decode(header, static_cast<std::uint8_t>(ecc ^ (1U << bit)));
    ASSERT_EQ(dec.status, EccDecode::Status::kCorrected) << "ecc bit " << bit;
    ASSERT_EQ(dec.header24, header) << "ecc bit " << bit;
  }
}

TEST(HeaderEcc, DetectsDoubleBitFlips) {
  // Every double flip over the WHOLE 30-bit received word (24 data bits +
  // 6 ECC bits, including the overall-parity bit) must be detected as
  // uncorrectable or — at minimum — never silently hand back wrong data.
  const std::uint32_t header = 0x30A55AU;
  const std::uint8_t ecc = transport::ecc_encode(header);
  int uncorrectable = 0;
  int miscorrected = 0;
  const auto decode_with_flips = [&](int a, int b) {
    std::uint32_t h = header;
    std::uint8_t e = ecc;
    for (const int bit : {a, b}) {
      if (bit < 24) {
        h ^= 1U << bit;
      } else {
        e = static_cast<std::uint8_t>(e ^ (1U << (bit - 24)));
      }
    }
    return transport::ecc_decode(h, e);
  };
  for (int a = 0; a < 30; ++a) {
    for (int b = a + 1; b < 30; ++b) {
      const EccDecode dec = decode_with_flips(a, b);
      if (dec.status == EccDecode::Status::kUncorrectable) {
        ++uncorrectable;
      } else if (dec.header24 != header) {
        ++miscorrected;  // silently wrong data would defeat the whole point
      }
    }
  }
  EXPECT_EQ(uncorrectable, 30 * 29 / 2);  // SEC-DED: every double flip detected
  EXPECT_EQ(miscorrected, 0);
}

// --- golden packet layout ----------------------------------------------------

TEST(PacketLayout, GoldenShortPacketBytes) {
  // Frame Start, virtual channel 1, frame number 5:
  //   DI = (1 << 6) | 0x00, value little-endian, 6-bit SEC-DED ECC.
  const Packet fs = CodedFramePacketizer::short_packet(0x40, 5);
  EXPECT_EQ(fs, (Packet{0x40, 0x05, 0x00, 0x29}));
  const Packet fe = CodedFramePacketizer::short_packet(0x41, 5);
  EXPECT_EQ(fe, (Packet{0x41, 0x05, 0x00, 0x0A}));
}

TEST(PacketLayout, GoldenLongPacketBytes) {
  // RAW32 row of two floats {1.0f, -2.0f} on virtual channel 0:
  //   header [0x30, wc=8 LE, ECC=0x32], IEEE-754 payload, CRC-16 0x5545 LE.
  const float row[2] = {1.0F, -2.0F};
  const Packet lp = CodedFramePacketizer::long_packet(
      transport::kDtRaw32, reinterpret_cast<const std::uint8_t*>(row), 8);
  EXPECT_EQ(lp, (Packet{0x30, 0x08, 0x00, 0x32,              // header + ECC
                        0x00, 0x00, 0x80, 0x3F,              // 1.0f
                        0x00, 0x00, 0x00, 0xC0,              // -2.0f
                        0x45, 0x55}));                       // CRC-16/CCITT-FALSE
}

TEST(PacketLayout, FrameStructureAndByteBudget) {
  Rng rng(3);
  const Tensor coded = Tensor::rand_uniform(Shape{4, 6}, rng);
  CodedFramePacketizer packetizer(/*virtual_channel=*/2);
  const WireFrame wire = packetizer.packetize(coded, 77);
  ASSERT_EQ(wire.packets.size(), 6U);  // FS + 4 rows + FE
  EXPECT_EQ(wire.packets.front().size(), 4U);
  EXPECT_EQ(wire.packets.back().size(), 4U);
  for (std::size_t r = 1; r + 1 < wire.packets.size(); ++r) {
    EXPECT_EQ(wire.packets[r].size(), 4U + 6 * 4 + 2U);
    EXPECT_EQ(wire.packets[r][0], 0x80 | 0x30);  // VC 2 in DI bits 7..6
  }
  EXPECT_EQ(wire.total_bytes(), 2 * 4U + 4 * (4 + 24 + 2U));
  EXPECT_EQ(wire.payload_bytes(), 4 * 24U);
}

TEST(PacketLayout, RejectsBadGeometry) {
  EXPECT_THROW(CodedFramePacketizer(4), std::runtime_error);  // VC out of range
  CodedFramePacketizer packetizer;
  Rng rng(5);
  EXPECT_THROW(packetizer.packetize(Tensor::rand_uniform(Shape{2, 3, 4}, rng), 0),
               std::runtime_error);  // not (H, W)
}

// --- round trip --------------------------------------------------------------

struct Geometry {
  std::int64_t height;
  std::int64_t width;
  int lanes;
};

class RoundTripTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(RoundTripTest, PacketizeDepacketizeIsBitIdentical) {
  const Geometry g = GetParam();
  Rng rng(static_cast<std::uint64_t>(g.height * 100 + g.width * 10 + g.lanes));
  const Tensor coded = Tensor::rand_uniform(Shape{g.height, g.width}, rng, -3.0F, 3.0F);

  CodedFramePacketizer packetizer(/*virtual_channel=*/1);
  Depacketizer depacketizer;
  const WireFrame wire = packetizer.packetize(coded, 123);
  const RxFrame rx = depacketizer.depacketize(wire, g.height, g.width);
  ASSERT_EQ(rx.outcome, RxOutcome::kOk);
  EXPECT_EQ(rx.frame_number, 123);
  EXPECT_EQ(rx.lines_received, static_cast<std::uint32_t>(g.height));
  EXPECT_EQ(rx.crc_errors, 0U);
  EXPECT_EQ(rx.corrected_headers, 0U);
  ASSERT_EQ(rx.coded.shape(), coded.shape());
  for (std::size_t i = 0; i < coded.data().size(); ++i) {
    ASSERT_EQ(rx.coded.data()[i], coded.data()[i]) << "pixel " << i;
  }

  // Through the clean FramedLink the lane count changes time, never bits.
  LinkConfig link_cfg;
  link_cfg.mipi.lanes = g.lanes;
  link_cfg.virtual_channel = 1;
  FramedLink link(link_cfg);
  const TransferResult result = link.transfer(coded, 123);
  ASSERT_EQ(result.outcome, RxOutcome::kOk);
  EXPECT_EQ(result.wire_bytes, wire.total_bytes());
  for (std::size_t i = 0; i < coded.data().size(); ++i) {
    ASSERT_EQ(result.coded.data()[i], coded.data()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, RoundTripTest,
                         ::testing::Values(Geometry{1, 1, 1}, Geometry{16, 16, 1},
                                           Geometry{16, 16, 2}, Geometry{16, 16, 4},
                                           Geometry{7, 5, 2}, Geometry{32, 8, 4},
                                           Geometry{3, 17, 4}));

// --- fault matrix: each fault class -> its expected outcome ------------------

class FaultMatrixTest : public ::testing::Test {
 protected:
  FaultMatrixTest() {
    Rng rng(11);
    coded_ = Tensor::rand_uniform(Shape{8, 8}, rng);
    wire_ = CodedFramePacketizer(0).packetize(coded_, 9);
  }
  RxFrame receive() const { return Depacketizer().depacketize(wire_, 8, 8); }

  Tensor coded_;
  WireFrame wire_;  // FS + 8 rows + FE; packets[1..8] are the rows
};

TEST_F(FaultMatrixTest, PayloadBitFlipIsCrcError) {
  wire_.packets[3][transport::kHeaderBytes + 5] ^= 0x04;
  const RxFrame rx = receive();
  EXPECT_EQ(rx.outcome, RxOutcome::kCrcError);
  EXPECT_EQ(rx.crc_errors, 1U);
  EXPECT_EQ(rx.lines_received, 8U);  // geometry complete, payload damaged
}

TEST_F(FaultMatrixTest, CrcFooterBitFlipIsCrcError) {
  wire_.packets[5].back() ^= 0x80;
  EXPECT_EQ(receive().outcome, RxOutcome::kCrcError);
}

TEST_F(FaultMatrixTest, SingleHeaderBitFlipIsCorrectedToOk) {
  wire_.packets[4][1] ^= 0x01;  // word-count byte takes a hit
  const RxFrame rx = receive();
  EXPECT_EQ(rx.outcome, RxOutcome::kOk);  // ECC repaired it: frame intact
  EXPECT_EQ(rx.corrected_headers, 1U);
  for (std::size_t i = 0; i < coded_.data().size(); ++i) {
    ASSERT_EQ(rx.coded.data()[i], coded_.data()[i]);
  }
}

TEST_F(FaultMatrixTest, ReservedEccBitFlipLosesTheLine) {
  // The ECC byte's two reserved (always-zero) bits are outside the Hamming
  // code's reach: a flip there cannot be repaired, only rejected.
  wire_.packets[4][3] ^= 0x40;
  const RxFrame rx = receive();
  EXPECT_EQ(rx.outcome, RxOutcome::kMissingLines);
  EXPECT_EQ(rx.lost_packets, 1U);
  EXPECT_EQ(rx.corrected_headers, 0U);
}

TEST_F(FaultMatrixTest, DoubleHeaderBitFlipLosesTheLine) {
  wire_.packets[4][0] ^= 0x01;
  wire_.packets[4][2] ^= 0x40;
  const RxFrame rx = receive();
  EXPECT_EQ(rx.outcome, RxOutcome::kMissingLines);
  EXPECT_EQ(rx.lost_packets, 1U);
  EXPECT_EQ(rx.lines_received, 7U);
}

TEST_F(FaultMatrixTest, DroppedRowPacketIsMissingLines) {
  wire_.packets.erase(wire_.packets.begin() + 2);
  const RxFrame rx = receive();
  EXPECT_EQ(rx.outcome, RxOutcome::kMissingLines);
  EXPECT_EQ(rx.lines_received, 7U);
}

TEST_F(FaultMatrixTest, DroppedFrameStartIsTruncated) {
  wire_.packets.erase(wire_.packets.begin());
  EXPECT_EQ(receive().outcome, RxOutcome::kTruncated);
}

TEST_F(FaultMatrixTest, DroppedFrameEndIsTruncated) {
  wire_.packets.pop_back();
  EXPECT_EQ(receive().outcome, RxOutcome::kTruncated);
}

TEST_F(FaultMatrixTest, LaneStallMidPacketIsTruncated) {
  wire_.packets[6].resize(transport::kHeaderBytes + 10);  // tail cut mid-payload
  EXPECT_EQ(receive().outcome, RxOutcome::kTruncated);
}

TEST_F(FaultMatrixTest, StreamDyingMidHeaderIsTruncated) {
  wire_.packets[6].resize(2);
  EXPECT_EQ(receive().outcome, RxOutcome::kTruncated);
}

// --- seeded injector ---------------------------------------------------------

TEST(FaultInjector, ValidatesRates) {
  FaultConfig bad;
  bad.packet_drop_rate = 1.5;
  EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
  bad.packet_drop_rate = -0.1;
  EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
}

TEST(FaultInjector, ZeroRatesAreACountedNoOp) {
  Rng rng(13);
  const Tensor coded = Tensor::rand_uniform(Shape{4, 4}, rng);
  WireFrame wire = CodedFramePacketizer(0).packetize(coded, 1);
  const WireFrame original = wire;
  FaultInjector injector{FaultConfig{}};
  EXPECT_FALSE(injector.apply(wire));
  EXPECT_EQ(injector.stats().frames, 1U);
  EXPECT_EQ(injector.stats().frames_faulted, 0U);
  ASSERT_EQ(wire.packets.size(), original.packets.size());
  for (std::size_t i = 0; i < wire.packets.size(); ++i) {
    EXPECT_EQ(wire.packets[i], original.packets[i]);
  }
}

// The same seed must reproduce the exact same corruption — outcomes, counters
// and bytes — across independent injector instances.
TEST(FaultInjector, SeededFaultsAreDeterministicAcrossRuns) {
  FaultConfig cfg;
  cfg.bit_flip_per_byte = 0.002;
  cfg.packet_drop_rate = 0.05;
  cfg.lane_stall_rate = 0.02;
  cfg.seed = 99;

  const auto run = [&cfg] {
    Rng rng(17);
    FaultInjector injector(cfg);
    Depacketizer depacketizer;
    std::vector<RxOutcome> outcomes;
    for (int f = 0; f < 40; ++f) {
      const Tensor coded = Tensor::rand_uniform(Shape{8, 8}, rng);
      WireFrame wire = CodedFramePacketizer(0).packetize(
          coded, static_cast<std::uint16_t>(f));
      injector.apply(wire);
      outcomes.push_back(depacketizer.depacketize(wire, 8, 8).outcome);
    }
    return std::make_pair(outcomes, injector.stats());
  };

  const auto [outcomes_a, stats_a] = run();
  const auto [outcomes_b, stats_b] = run();
  EXPECT_EQ(outcomes_a, outcomes_b);
  EXPECT_EQ(stats_a.bits_flipped, stats_b.bits_flipped);
  EXPECT_EQ(stats_a.packets_dropped, stats_b.packets_dropped);
  EXPECT_EQ(stats_a.lane_stalls, stats_b.lane_stalls);
  EXPECT_EQ(stats_a.frames_faulted, stats_b.frames_faulted);
  EXPECT_GT(stats_a.frames_faulted, 0U);  // the rates actually did something
  int corrupted = 0;
  for (const RxOutcome outcome : outcomes_a) {
    corrupted += outcome != RxOutcome::kOk ? 1 : 0;
  }
  EXPECT_GT(corrupted, 0);
}

// Under drop-only faults, a frame is corrupt IFF the injector touched it —
// the exactness the serving-level drop counters are pinned to.
TEST(FaultInjector, DropOnlyFaultsCorruptExactlyTheFaultedFrames) {
  FaultConfig cfg;
  cfg.packet_drop_rate = 0.08;
  cfg.seed = 7;
  Rng rng(19);
  FaultInjector injector(cfg);
  Depacketizer depacketizer;
  std::uint64_t corrupt_frames = 0;
  for (int f = 0; f < 60; ++f) {
    const Tensor coded = Tensor::rand_uniform(Shape{6, 6}, rng);
    WireFrame wire =
        CodedFramePacketizer(0).packetize(coded, static_cast<std::uint16_t>(f));
    const bool faulted = injector.apply(wire);
    const RxOutcome outcome = depacketizer.depacketize(wire, 6, 6).outcome;
    ASSERT_EQ(faulted, outcome != RxOutcome::kOk) << "frame " << f;
    corrupt_frames += outcome != RxOutcome::kOk ? 1 : 0;
  }
  EXPECT_EQ(corrupt_frames, injector.stats().frames_faulted);
  EXPECT_GT(corrupt_frames, 0U);
}

// --- FramedLink accounting ---------------------------------------------------

TEST(FramedLinkTest, CleanTransferAccountsBytesAndOutcomes) {
  Rng rng(23);
  const Tensor coded = Tensor::rand_uniform(Shape{16, 16}, rng);
  LinkConfig cfg;
  cfg.mipi.lanes = 2;
  FramedLink link(cfg);
  const TransferResult result = link.transfer(coded, 0);
  ASSERT_EQ(result.outcome, RxOutcome::kOk);
  // FS + FE (4 bytes each) + 16 rows of (4 + 64 + 2).
  const std::uint64_t expected = 2 * 4U + 16 * (4 + 64 + 2U);
  EXPECT_EQ(result.wire_bytes, expected);
  EXPECT_EQ(link.mipi().total_bytes(), expected);
  EXPECT_EQ(link.mipi().payload_bytes(), 16 * 64U);
  EXPECT_EQ(link.mipi().packets(), 18U);
  EXPECT_EQ(link.counters().frames, 1U);
  EXPECT_EQ(link.counters().ok_frames, 1U);
  // Lane accounting: every packet striped over 2 lanes, per-packet ceilings.
  EXPECT_EQ(link.mipi().lane_bytes(0), 2 * 2U + 16 * 35U);
  EXPECT_EQ(link.mipi().lane_bytes(1), 2 * 2U + 16 * 35U);
}

TEST(FramedLinkTest, FaultyTransfersLandInOutcomeCounters) {
  Rng rng(29);
  LinkConfig cfg;
  cfg.faults.packet_drop_rate = 0.10;
  cfg.faults.seed = 31;
  FramedLink link(cfg);
  for (int f = 0; f < 30; ++f) {
    (void)link.transfer(Tensor::rand_uniform(Shape{6, 6}, rng),
                        static_cast<std::uint16_t>(f));
  }
  const auto& counters = link.counters();
  EXPECT_EQ(counters.frames, 30U);
  EXPECT_EQ(counters.ok_frames + counters.crc_error_frames + counters.truncated_frames +
                counters.missing_line_frames,
            30U);
  EXPECT_LT(counters.ok_frames, 30U);  // the drop rate bit someone
  EXPECT_EQ(30U - counters.ok_frames, link.injector().stats().frames_faulted);
}

}  // namespace
}  // namespace snappix
