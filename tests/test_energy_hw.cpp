// Tests for the energy model (Sec. VI-D) and area model (Sec. V): component
// constants, headline savings ratios, and monotonicity properties.
#include <gtest/gtest.h>

#include "energy/model.h"
#include "energy/scenario.h"
#include "hw/area.h"

namespace snappix {
namespace {

using energy::EnergyModel;
using energy::GpuInference;
using energy::GpuModelParams;
using energy::WirelessTech;
using hw::PixelAreaModel;

constexpr std::int64_t kPixels = 112 * 112;
constexpr int kSlots = 16;

TEST(EnergyComponents, PaperConstants) {
  const EnergyModel model;
  // 220 pJ/px sensing, 95.6% ADC+MIPI (paper Sec. VI-D).
  EXPECT_NEAR(model.readout_pj_per_pixel() + model.analog_pj_per_pixel(), 220.0, 1e-9);
  EXPECT_NEAR(model.readout_pj_per_pixel(), 220.0 * 0.956, 1e-9);
  EXPECT_NEAR(model.ce_pj_per_pixel_slot(), 9.0, 1e-9);
  EXPECT_NEAR(model.wireless_pj_per_pixel(WirelessTech::kPassiveWifi), 43.04, 1e-9);
  EXPECT_NEAR(model.wireless_pj_per_pixel(WirelessTech::kLoraBackscatter), 7.4e6, 1e-3);
}

TEST(EnergyComponents, SixteenXReadoutAndWirelessReduction) {
  const EnergyModel model;
  // Paper: "Under T = 16, SNAPPIX reduces the ADC/MIPI and wireless
  // transmission energy by 16x".
  const auto table = energy::component_reductions(model, kSlots, WirelessTech::kPassiveWifi);
  bool saw_readout = false;
  bool saw_wireless = false;
  for (const auto& row : table) {
    if (row.component == "adc+mipi readout") {
      EXPECT_DOUBLE_EQ(row.reduction, 16.0);
      saw_readout = true;
    }
    if (row.component.rfind("wireless", 0) == 0) {
      EXPECT_DOUBLE_EQ(row.reduction, 16.0);
      saw_wireless = true;
    }
  }
  EXPECT_TRUE(saw_readout);
  EXPECT_TRUE(saw_wireless);
}

TEST(EnergyScenarios, ShortRangeSavingMatchesPaper) {
  const EnergyModel model;
  const auto result =
      energy::offload_scenario(model, kPixels, kSlots, WirelessTech::kPassiveWifi);
  // Paper: 7.6x edge energy saving with passive Wi-Fi.
  EXPECT_NEAR(result.saving_factor, 7.6, 0.25);
  EXPECT_GT(result.baseline_j, result.snappix_j);
}

TEST(EnergyScenarios, LongRangeSavingMatchesPaper) {
  const EnergyModel model;
  const auto result =
      energy::offload_scenario(model, kPixels, kSlots, WirelessTech::kLoraBackscatter);
  // Paper reports 15.4x; our model composes to ~16x because the wireless
  // term dominates completely (see EXPERIMENTS.md for the delta discussion).
  EXPECT_GT(result.saving_factor, 14.0);
  EXPECT_LT(result.saving_factor, 16.5);
}

TEST(EnergyScenarios, SavingGrowsWithSlots) {
  const EnergyModel model;
  double previous = 0.0;
  for (const int slots : {2, 4, 8, 16}) {
    const auto r = energy::offload_scenario(model, kPixels, slots, WirelessTech::kPassiveWifi);
    EXPECT_GT(r.saving_factor, previous);
    previous = r.saving_factor;
  }
}

TEST(EnergyScenarios, SavingIndependentOfResolution) {
  const EnergyModel model;
  const auto small = energy::offload_scenario(model, 32 * 32, kSlots, WirelessTech::kPassiveWifi);
  const auto large =
      energy::offload_scenario(model, 1920 * 1080, kSlots, WirelessTech::kPassiveWifi);
  EXPECT_NEAR(small.saving_factor, large.saving_factor, 1e-9);
}

TEST(EnergyGpu, EdgeGpuScenarioRatios) {
  const EnergyModel model;
  const GpuModelParams gpu;
  const GpuInference snappix_s{"snappix-s", energy::paper_snappix_s_gflops(), false};
  const GpuInference videomae{"videomae-st", energy::paper_videomae_st_gflops(), false};
  const GpuInference c3d{"c3d", energy::paper_c3d_gflops(), true};
  const auto vs_videomae = energy::edge_gpu_scenario(model, gpu, kPixels, kSlots, snappix_s,
                                                     videomae);
  const auto vs_c3d = energy::edge_gpu_scenario(model, gpu, kPixels, kSlots, snappix_s, c3d);
  // Paper: 1.4x vs VideoMAEv2-ST and 4.5x vs C3D.
  EXPECT_NEAR(vs_videomae.saving_factor, 1.4, 0.5);
  EXPECT_NEAR(vs_c3d.saving_factor, 4.5, 1.2);
  EXPECT_GT(vs_c3d.saving_factor, vs_videomae.saving_factor);
}

TEST(EnergyGpu, FlopCountsAreOrdered) {
  // SNAPPIX-S < SNAPPIX-B ~ VideoMAE-ST < C3D in our accounting.
  EXPECT_LT(energy::paper_snappix_s_gflops(), energy::paper_snappix_b_gflops());
  EXPECT_LT(energy::paper_snappix_b_gflops(), energy::paper_c3d_gflops());
  EXPECT_GT(energy::paper_videomae_st_gflops(), energy::paper_snappix_s_gflops());
}

TEST(EnergyGpu, InvalidInferenceThrows) {
  EXPECT_THROW(energy::gpu_inference_energy_j({"bad", 0.0, false}, GpuModelParams{}),
               std::runtime_error);
}

TEST(EnergyModelApi, BadScenarioParametersThrow) {
  const EnergyModel model;
  EXPECT_THROW(model.conventional_edge_energy_j(0, 16, WirelessTech::kPassiveWifi),
               std::runtime_error);
  EXPECT_THROW(model.snappix_edge_energy_j(100, 0, WirelessTech::kPassiveWifi),
               std::runtime_error);
}

// --- area model (Sec. V) -----------------------------------------------------

TEST(AreaModel, DeepScale65To22MatchesPaper) {
  // 30 um^2 @65 nm -> 3.2 um^2 @22 nm.
  EXPECT_NEAR(hw::scale_area_um2(30.0, 65, 22), 3.2, 0.01);
}

TEST(AreaModel, ScalingIsMonotonicInNode) {
  double previous = 1e9;
  for (const int node : hw::known_nodes()) {
    const double area = hw::scale_area_um2(30.0, 65, node);
    EXPECT_LT(area, previous + 1e-12);
    previous = area;
  }
}

TEST(AreaModel, ScalingRoundTrips) {
  const double down = hw::scale_area_um2(30.0, 65, 22);
  EXPECT_NEAR(hw::scale_area_um2(down, 22, 65), 30.0, 1e-9);
}

TEST(AreaModel, UnknownNodeThrows) {
  EXPECT_THROW(hw::scale_area_um2(30.0, 65, 7), std::runtime_error);
}

TEST(AreaModel, BroadcastWireSidesMatchPaper) {
  const PixelAreaModel model;
  // Paper: N = 8 -> 2.24 um x 2.24 um; N = 14 -> 3.92 um x 3.92 um.
  EXPECT_NEAR(model.broadcast_wire_side_um(8), 2.24, 1e-6);
  EXPECT_NEAR(model.broadcast_wire_side_um(14), 3.92, 1e-6);
}

TEST(AreaModel, ShiftRegisterWiresConstant) {
  const PixelAreaModel model;
  // Four wires regardless of tile size (pattern in/clk/reset/transfer).
  const double side = model.shift_register_wire_side_um();
  EXPECT_NEAR(side, 4 * 0.14, 1e-9);
  EXPECT_LT(side, model.broadcast_wire_side_um(8));
}

TEST(AreaModel, BroadcastCrossoverBeyondAps) {
  const PixelAreaModel model;
  const int crossover = model.broadcast_crossover_tile();
  EXPECT_GT(model.broadcast_wire_side_um(crossover), model.params().aps_pitch_um);
  EXPECT_LE(model.broadcast_wire_side_um(crossover - 1), model.params().aps_pitch_um);
  // The paper's N = 14 case exceeds the APS; N = 8 does not.
  EXPECT_GT(model.broadcast_wire_side_um(14), model.params().aps_pitch_um);
  EXPECT_LT(model.broadcast_wire_side_um(8), model.params().aps_pitch_um);
}

TEST(AreaModel, LogicHiddenUnderApsAt22nm) {
  const PixelAreaModel model;
  // 3.2 um^2 logic < 9 um^2 APS footprint: pixel area set by the APS.
  EXPECT_TRUE(model.logic_hidden_under_aps(22));
  EXPECT_NEAR(model.logic_area_um2(22), 3.2, 0.01);
  // At 65 nm the raw logic (30 um^2) would NOT hide under a 3 um pixel.
  EXPECT_FALSE(model.logic_hidden_under_aps(65));
}

TEST(AreaModel, InvalidParamsThrow) {
  hw::PixelAreaParams params;
  params.wire_pitch_um = 0.0;
  EXPECT_THROW(PixelAreaModel{params}, std::runtime_error);
}

// Property sweep: broadcast wiring grows linearly; ratio to constant wiring
// grows with N.
class WireSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(WireSweepTest, BroadcastScalesLinearly) {
  const int n = GetParam();
  const PixelAreaModel model;
  EXPECT_NEAR(model.broadcast_wire_side_um(n), 2.0 * n * 0.14, 1e-9);
  EXPECT_NEAR(model.broadcast_wire_side_um(2 * n) / model.broadcast_wire_side_um(n), 2.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(WireGrid, WireSweepTest, ::testing::Values(1, 2, 4, 8, 14, 16, 32));

}  // namespace
}  // namespace snappix
