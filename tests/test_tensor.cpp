// Unit tests for tensor structure, factories, and forward-only semantics.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <numeric>
#include <vector>

#include "tensor/broadcast.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace snappix {
namespace {

TEST(Shape, NumelAndIndexing) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.ndim(), 3);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[-1], 4);
  EXPECT_EQ(s[-3], 2);
}

TEST(Shape, Strides) {
  const Shape s{2, 3, 4};
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3U);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(Shape, EmptyShapeIsScalarLike) {
  const Shape s;
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s.ndim(), 0);
}

TEST(Shape, RejectsNegativeDims) { EXPECT_THROW(Shape({2, -1}), std::runtime_error); }

TEST(Shape, OutOfRangeIndexThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(s[2], std::runtime_error);
  EXPECT_THROW(s[-3], std::runtime_error);
}

TEST(Tensor, ZerosOnesFull) {
  const Tensor z = Tensor::zeros(Shape{2, 2});
  const Tensor o = Tensor::ones(Shape{2, 2});
  const Tensor f = Tensor::full(Shape{2, 2}, 3.5F);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(z.data()[static_cast<std::size_t>(i)], 0.0F);
    EXPECT_EQ(o.data()[static_cast<std::size_t>(i)], 1.0F);
    EXPECT_EQ(f.data()[static_cast<std::size_t>(i)], 3.5F);
  }
}

TEST(Tensor, FromVectorShapeMismatchThrows) {
  EXPECT_THROW(Tensor::from_vector({1.0F, 2.0F}, Shape{3}), std::runtime_error);
}

TEST(Tensor, AtAndSetAt) {
  Tensor t = Tensor::zeros(Shape{2, 3});
  t.set_at({1, 2}, 7.0F);
  EXPECT_EQ(t.at({1, 2}), 7.0F);
  EXPECT_EQ(t.at({0, 0}), 0.0F);
  EXPECT_THROW(t.at({2, 0}), std::runtime_error);
}

TEST(Tensor, ItemRequiresScalar) {
  EXPECT_EQ(Tensor::scalar(4.0F).item(), 4.0F);
  EXPECT_THROW(Tensor::zeros(Shape{2}).item(), std::runtime_error);
}

TEST(Tensor, RandnIsDeterministicPerSeed) {
  Rng rng_a(42);
  Rng rng_b(42);
  const Tensor a = Tensor::randn(Shape{16}, rng_a);
  const Tensor b = Tensor::randn(Shape{16}, rng_b);
  EXPECT_TRUE(allclose(a, b));
}

TEST(Tensor, DetachSharesNoTape) {
  Tensor a = Tensor::ones(Shape{2}, /*requires_grad=*/true);
  Tensor b = a.detach();
  EXPECT_FALSE(b.requires_grad());
  EXPECT_TRUE(allclose(a, b));
}

TEST(Broadcast, Shapes) {
  using detail::broadcast_shapes;
  EXPECT_EQ(broadcast_shapes(Shape{3, 1}, Shape{1, 4}), (Shape{3, 4}));
  EXPECT_EQ(broadcast_shapes(Shape{5}, Shape{2, 5}), (Shape{2, 5}));
  EXPECT_EQ(broadcast_shapes(Shape{1}, Shape{7}), (Shape{7}));
  EXPECT_THROW(broadcast_shapes(Shape{3}, Shape{4}), std::runtime_error);
}

TEST(ElementwiseForward, AddSubMulDiv) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4}, Shape{2, 2});
  const Tensor b = Tensor::from_vector({4, 3, 2, 1}, Shape{2, 2});
  EXPECT_TRUE(allclose(add(a, b), Tensor::full(Shape{2, 2}, 5.0F)));
  EXPECT_TRUE(allclose(sub(a, b), Tensor::from_vector({-3, -1, 1, 3}, Shape{2, 2})));
  EXPECT_TRUE(allclose(mul(a, b), Tensor::from_vector({4, 6, 6, 4}, Shape{2, 2})));
  EXPECT_TRUE(allclose(div(a, b), Tensor::from_vector({0.25F, 2.0F / 3.0F, 1.5F, 4.0F},
                                                      Shape{2, 2})));
}

TEST(ElementwiseForward, BroadcastRowAndColumn) {
  const Tensor m = Tensor::from_vector({1, 2, 3, 4, 5, 6}, Shape{2, 3});
  const Tensor row = Tensor::from_vector({10, 20, 30}, Shape{3});
  const Tensor col = Tensor::from_vector({100, 200}, Shape{2, 1});
  EXPECT_TRUE(allclose(add(m, row), Tensor::from_vector({11, 22, 33, 14, 25, 36}, Shape{2, 3})));
  EXPECT_TRUE(
      allclose(add(m, col), Tensor::from_vector({101, 102, 103, 204, 205, 206}, Shape{2, 3})));
}

TEST(ElementwiseForward, UnaryMath) {
  const Tensor a = Tensor::from_vector({-1.0F, 0.0F, 2.0F}, Shape{3});
  EXPECT_TRUE(allclose(relu(a), Tensor::from_vector({0, 0, 2}, Shape{3})));
  EXPECT_TRUE(allclose(square(a), Tensor::from_vector({1, 0, 4}, Shape{3})));
  EXPECT_TRUE(allclose(abs(a), Tensor::from_vector({1, 0, 2}, Shape{3})));
  EXPECT_TRUE(allclose(neg(a), Tensor::from_vector({1, 0, -2}, Shape{3})));
  EXPECT_NEAR(exp(Tensor::scalar(1.0F)).item(), std::exp(1.0F), 1e-6F);
  EXPECT_NEAR(log(Tensor::scalar(std::exp(2.0F))).item(), 2.0F, 1e-5F);
  EXPECT_NEAR(snappix::sqrt(Tensor::scalar(9.0F)).item(), 3.0F, 1e-6F);
}

TEST(ElementwiseForward, ClampAndBinarize) {
  const Tensor a = Tensor::from_vector({-0.5F, 0.3F, 0.7F, 1.5F}, Shape{4});
  EXPECT_TRUE(allclose(clamp(a, 0.0F, 1.0F), Tensor::from_vector({0, 0.3F, 0.7F, 1}, Shape{4})));
  EXPECT_TRUE(allclose(binarize_ste(a), Tensor::from_vector({0, 0, 1, 1}, Shape{4})));
  EXPECT_THROW(clamp(a, 1.0F, 0.0F), std::runtime_error);
}

TEST(ElementwiseForward, SigmoidTanhGelu) {
  const Tensor zero = Tensor::scalar(0.0F);
  EXPECT_NEAR(sigmoid(zero).item(), 0.5F, 1e-6F);
  EXPECT_NEAR(snappix::tanh(zero).item(), 0.0F, 1e-6F);
  EXPECT_NEAR(gelu(zero).item(), 0.0F, 1e-6F);
  // GELU approaches identity for large positive inputs.
  EXPECT_NEAR(gelu(Tensor::scalar(6.0F)).item(), 6.0F, 1e-3F);
}

TEST(MatmulForward, TwoByTwo) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4}, Shape{2, 2});
  const Tensor b = Tensor::from_vector({5, 6, 7, 8}, Shape{2, 2});
  EXPECT_TRUE(allclose(matmul(a, b), Tensor::from_vector({19, 22, 43, 50}, Shape{2, 2})));
}

TEST(MatmulForward, Batched) {
  const Tensor a = Tensor::from_vector({1, 0, 0, 1, 2, 0, 0, 2}, Shape{2, 2, 2});
  const Tensor b = Tensor::from_vector({1, 2, 3, 4, 1, 2, 3, 4}, Shape{2, 2, 2});
  const Tensor c = matmul(a, b);
  EXPECT_TRUE(allclose(c, Tensor::from_vector({1, 2, 3, 4, 2, 4, 6, 8}, Shape{2, 2, 2})));
}

TEST(MatmulForward, BatchBroadcastRhs) {
  const Tensor a = Tensor::from_vector({1, 0, 0, 1, 2, 0, 0, 2}, Shape{2, 2, 2});
  const Tensor b = Tensor::from_vector({1, 2, 3, 4}, Shape{2, 2});
  const Tensor c = matmul(a, b);
  EXPECT_TRUE(allclose(c, Tensor::from_vector({1, 2, 3, 4, 2, 4, 6, 8}, Shape{2, 2, 2})));
}

TEST(MatmulForward, MismatchThrows) {
  EXPECT_THROW(matmul(Tensor::zeros(Shape{2, 3}), Tensor::zeros(Shape{4, 2})),
               std::runtime_error);
}

// --- backward GEMM kernels ---------------------------------------------------
//
// The register-tiled gemm_nt/gemm_tn must stay BIT-identical to the
// historical streaming loops — per-element ascending-order accumulation,
// read-modify-write semantics on a nonzero c, and gemm_tn's av == 0 skip —
// because training gradients (and their optimizer trajectories) are pinned
// by the determinism suites.

namespace {

// The pre-tiling streaming kernels, verbatim: the bit-exactness oracles.
void gemm_nt_naive(const float* a, const float* b, float* c, std::int64_t m, std::int64_t n,
                   std::int64_t k) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < k; ++j) {
      const float* arow = a + i * n;
      const float* brow = b + j * n;
      float acc = 0.0F;
      for (std::int64_t l = 0; l < n; ++l) {
        acc += arow[l] * brow[l];
      }
      c[i * k + j] += acc;
    }
  }
}

void gemm_tn_naive(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) {
  for (std::int64_t l = 0; l < m; ++l) {
    const float* arow = a + l * k;
    const float* brow = b + l * n;
    for (std::int64_t i = 0; i < k; ++i) {
      const float av = arow[i];
      if (av == 0.0F) {
        continue;
      }
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

// Random data with a sprinkling of exact zeros (so gemm_tn's skip is
// exercised) and a NONZERO initial c (so read-modify-write order matters).
struct GemmCase {
  std::vector<float> a, b, c;
};

GemmCase make_case(std::int64_t a_elems, std::int64_t b_elems, std::int64_t c_elems,
                   std::uint64_t seed) {
  Rng rng(seed);
  GemmCase gc;
  gc.a.resize(static_cast<std::size_t>(a_elems));
  gc.b.resize(static_cast<std::size_t>(b_elems));
  gc.c.resize(static_cast<std::size_t>(c_elems));
  for (auto& v : gc.a) {
    v = rng.uniform() < 0.2F ? 0.0F : rng.uniform(-2.0F, 2.0F);
  }
  for (auto& v : gc.b) {
    v = rng.uniform(-2.0F, 2.0F);
  }
  for (auto& v : gc.c) {
    v = rng.uniform(-1.0F, 1.0F);
  }
  return gc;
}

}  // namespace

TEST(GemmBackwardKernels, TiledNtBitIdenticalToStreaming) {
  std::uint64_t seed = 200;
  for (const auto& [m, n, k] : std::vector<std::array<std::int64_t, 3>>{
           {1, 1, 1}, {3, 5, 2}, {4, 8, 4}, {5, 9, 11}, {12, 16, 8}, {13, 7, 9}}) {
    GemmCase gc = make_case(m * n, k * n, m * k, seed++);
    std::vector<float> expected = gc.c;
    detail::gemm_nt(gc.a.data(), gc.b.data(), gc.c.data(), m, n, k);
    gemm_nt_naive(gc.a.data(), gc.b.data(), expected.data(), m, n, k);
    for (std::int64_t i = 0; i < m * k; ++i) {
      ASSERT_EQ(gc.c[static_cast<std::size_t>(i)], expected[static_cast<std::size_t>(i)])
          << "nt m=" << m << " n=" << n << " k=" << k << " i=" << i;
    }
  }
}

TEST(GemmBackwardKernels, TiledTnBitIdenticalToStreaming) {
  std::uint64_t seed = 300;
  for (const auto& [m, k, n] : std::vector<std::array<std::int64_t, 3>>{
           {1, 1, 1}, {3, 5, 2}, {4, 4, 8}, {5, 9, 11}, {12, 8, 16}, {13, 7, 9}}) {
    GemmCase gc = make_case(m * k, m * n, k * n, seed++);
    std::vector<float> expected = gc.c;
    detail::gemm_tn(gc.a.data(), gc.b.data(), gc.c.data(), m, k, n);
    gemm_tn_naive(gc.a.data(), gc.b.data(), expected.data(), m, k, n);
    for (std::int64_t i = 0; i < k * n; ++i) {
      ASSERT_EQ(gc.c[static_cast<std::size_t>(i)], expected[static_cast<std::size_t>(i)])
          << "tn m=" << m << " k=" << k << " n=" << n << " i=" << i;
    }
  }
}

TEST(ReduceForward, SumMeanAxes) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, Shape{2, 3});
  EXPECT_TRUE(allclose(sum(a, 0), Tensor::from_vector({5, 7, 9}, Shape{3})));
  EXPECT_TRUE(allclose(sum(a, 1), Tensor::from_vector({6, 15}, Shape{2})));
  EXPECT_TRUE(allclose(sum(a, 1, /*keepdim=*/true), Tensor::from_vector({6, 15}, Shape{2, 1})));
  EXPECT_TRUE(allclose(mean(a, -1), Tensor::from_vector({2, 5}, Shape{2})));
  EXPECT_NEAR(sum_all(a).item(), 21.0F, 1e-6F);
  EXPECT_NEAR(mean_all(a).item(), 3.5F, 1e-6F);
}

TEST(ReduceForward, MaxAndArgmax) {
  const Tensor a = Tensor::from_vector({1, 9, 3, 7, 5, 6}, Shape{2, 3});
  EXPECT_TRUE(allclose(max_values(a, 1), Tensor::from_vector({9, 7}, Shape{2})));
  const auto idx = argmax_last_axis(a);
  ASSERT_EQ(idx.size(), 2U);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(SoftmaxForward, RowsSumToOne) {
  Rng rng(7);
  const Tensor a = Tensor::randn(Shape{4, 9}, rng);
  const Tensor s = softmax(a, -1);
  const Tensor row_sums = sum(s, -1);
  EXPECT_TRUE(allclose(row_sums, Tensor::ones(Shape{4}), 1e-5F));
  for (const float v : s.data()) {
    EXPECT_GT(v, 0.0F);
    EXPECT_LT(v, 1.0F);
  }
}

TEST(SoftmaxForward, MatchesLogSoftmax) {
  Rng rng(8);
  const Tensor a = Tensor::randn(Shape{3, 5}, rng);
  const Tensor s = softmax(a, -1);
  const Tensor ls = log_softmax(a, -1);
  EXPECT_TRUE(allclose(log(s), ls, 1e-5F));
}

TEST(SoftmaxForward, StableUnderLargeLogits) {
  const Tensor a = Tensor::from_vector({1000.0F, 1000.0F}, Shape{1, 2});
  const Tensor s = softmax(a, -1);
  EXPECT_NEAR(s.data()[0], 0.5F, 1e-6F);
}

TEST(LossForward, CrossEntropyUniform) {
  const Tensor logits = Tensor::zeros(Shape{2, 4});
  const Tensor ce = cross_entropy(logits, {0, 3});
  EXPECT_NEAR(ce.item(), std::log(4.0F), 1e-5F);
}

TEST(LossForward, CrossEntropyRejectsBadLabels) {
  const Tensor logits = Tensor::zeros(Shape{1, 3});
  EXPECT_THROW(cross_entropy(logits, {3}), std::runtime_error);
  EXPECT_THROW(cross_entropy(logits, {0, 1}), std::runtime_error);
}

TEST(LossForward, MseZeroForIdentical) {
  const Tensor a = Tensor::from_vector({1, 2, 3}, Shape{3});
  EXPECT_NEAR(mse_loss(a, a).item(), 0.0F, 1e-7F);
  const Tensor b = Tensor::from_vector({2, 3, 4}, Shape{3});
  EXPECT_NEAR(mse_loss(a, b).item(), 1.0F, 1e-6F);
}

TEST(ShapeOpsForward, ReshapeTransposePermute) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, Shape{2, 3});
  const Tensor r = reshape(a, Shape{3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_EQ(r.at({2, 1}), 6.0F);
  const Tensor t = transpose(a, 0, 1);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.at({0, 1}), 4.0F);
  EXPECT_EQ(t.at({2, 0}), 3.0F);
  const Tensor p = permute(a, {1, 0});
  EXPECT_TRUE(allclose(p, t));
}

TEST(ShapeOpsForward, ConcatAndSlice) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4}, Shape{2, 2});
  const Tensor b = Tensor::from_vector({5, 6}, Shape{1, 2});
  const Tensor c = concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_EQ(c.at({2, 1}), 6.0F);
  const Tensor s = slice(c, 0, 1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.at({0, 0}), 3.0F);
  EXPECT_THROW(slice(c, 0, 2, 2), std::runtime_error);
}

TEST(ShapeOpsForward, IndexSelect) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, Shape{3, 2});
  const Tensor g = index_select(a, 0, {2, 0});
  EXPECT_EQ(g.shape(), (Shape{2, 2}));
  EXPECT_EQ(g.at({0, 0}), 5.0F);
  EXPECT_EQ(g.at({1, 1}), 2.0F);
  EXPECT_THROW(index_select(a, 0, {3}), std::runtime_error);
}

TEST(ShapeOpsForward, Tile2d) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4}, Shape{2, 2});
  const Tensor t = tile_2d(a, 2, 3);
  EXPECT_EQ(t.shape(), (Shape{4, 6}));
  // Every tile replicates the pattern.
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 6; ++j) {
      EXPECT_EQ(t.at({i, j}), a.at({i % 2, j % 2}));
    }
  }
}

TEST(ConvForward, IdentityKernel) {
  Rng rng(3);
  const Tensor x = Tensor::randn(Shape{1, 1, 5, 5}, rng);
  Tensor w = Tensor::zeros(Shape{1, 1, 3, 3});
  w.set_at({0, 0, 1, 1}, 1.0F);
  const Tensor y = conv2d(x, w, Tensor(), /*stride=*/1, /*padding=*/1);
  EXPECT_TRUE(allclose(y, x, 1e-6F));
}

TEST(ConvForward, KnownAverage) {
  const Tensor x = Tensor::ones(Shape{1, 1, 4, 4});
  const Tensor w = Tensor::full(Shape{1, 1, 2, 2}, 0.25F);
  const Tensor y = conv2d(x, w, Tensor(), /*stride=*/2, /*padding=*/0);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_TRUE(allclose(y, Tensor::ones(Shape{1, 1, 2, 2}), 1e-6F));
}

TEST(ConvForward, BiasBroadcasts) {
  const Tensor x = Tensor::zeros(Shape{1, 1, 3, 3});
  const Tensor w = Tensor::zeros(Shape{2, 1, 1, 1});
  const Tensor b = Tensor::from_vector({1.0F, -2.0F}, Shape{2});
  const Tensor y = conv2d(x, w, b, 1, 0);
  EXPECT_EQ(y.shape(), (Shape{1, 2, 3, 3}));
  EXPECT_EQ(y.at({0, 0, 1, 1}), 1.0F);
  EXPECT_EQ(y.at({0, 1, 2, 2}), -2.0F);
}

TEST(PoolForward, AvgAndMax) {
  const Tensor x = Tensor::from_vector({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
                                       Shape{1, 1, 4, 4});
  const Tensor a = avg_pool2d(x, 2, 2);
  EXPECT_TRUE(allclose(a, Tensor::from_vector({3.5F, 5.5F, 11.5F, 13.5F}, Shape{1, 1, 2, 2})));
  const Tensor m = max_pool2d(x, 2, 2);
  EXPECT_TRUE(allclose(m, Tensor::from_vector({6, 8, 14, 16}, Shape{1, 1, 2, 2})));
}

TEST(PoolForward, Avg3d) {
  const Tensor x = Tensor::ones(Shape{1, 1, 4, 4, 4});
  const Tensor y = avg_pool3d(x, 2, 2, 2, 2);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2, 2}));
  EXPECT_TRUE(allclose(y, Tensor::ones(Shape{1, 1, 2, 2, 2})));
}

TEST(Conv3dForward, TemporalIdentity) {
  Rng rng(5);
  const Tensor x = Tensor::randn(Shape{1, 1, 3, 4, 4}, rng);
  Tensor w = Tensor::zeros(Shape{1, 1, 1, 1, 1});
  w.set_at({0, 0, 0, 0, 0}, 1.0F);
  const Tensor y = conv3d(x, w, Tensor(), 1, 1, 0, 0);
  EXPECT_TRUE(allclose(y, x, 1e-6F));
}

// Property sweep: tile_2d forward/backward round-trip over parameter grid.
class TileParamTest : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(TileParamTest, TiledValuesMatchSourcePattern) {
  const auto [th, tw, rh, rw] = GetParam();
  Rng rng(11);
  const Tensor a = Tensor::randn(Shape{th, tw}, rng);
  const Tensor t = tile_2d(a, rh, rw);
  ASSERT_EQ(t.shape(), (Shape{static_cast<std::int64_t>(th) * rh,
                              static_cast<std::int64_t>(tw) * rw}));
  for (std::int64_t i = 0; i < th * rh; ++i) {
    for (std::int64_t j = 0; j < tw * rw; ++j) {
      EXPECT_EQ(t.at({i, j}), a.at({i % th, j % tw}));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TileGrid, TileParamTest,
                         ::testing::Values(std::make_tuple(1, 1, 3, 3),
                                           std::make_tuple(2, 2, 1, 1),
                                           std::make_tuple(2, 3, 4, 2),
                                           std::make_tuple(8, 8, 4, 4),
                                           std::make_tuple(3, 5, 2, 7)));

// Property sweep: softmax rows sum to 1 across shapes and axes.
class SoftmaxParamTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SoftmaxParamTest, NormalizedAlongAxis) {
  const auto [rows, cols, axis] = GetParam();
  Rng rng(13);
  const Tensor a = Tensor::randn(Shape{rows, cols}, rng, 3.0F);
  const Tensor s = softmax(a, axis);
  const Tensor sums = sum(s, axis);
  for (const float v : sums.data()) {
    EXPECT_NEAR(v, 1.0F, 1e-5F);
  }
}

INSTANTIATE_TEST_SUITE_P(SoftmaxGrid, SoftmaxParamTest,
                         ::testing::Values(std::make_tuple(1, 7, 1),
                                           std::make_tuple(5, 3, 0),
                                           std::make_tuple(5, 3, 1),
                                           std::make_tuple(9, 1, 0),
                                           std::make_tuple(4, 16, -1)));

}  // namespace
}  // namespace snappix
