// Overload-discipline suite (docs/serving.md): QoS admission control, frame
// deadlines with drop-late semantics, priority-aware stealing, and the exact
// shed accounting behind them. Three groups:
//
//   1. Deterministic saturation tests — capacity-1 queues with scripted
//      producers pin EXACT shed counts per QoS class, drop-late for
//      already-expired frames, the EDF dequeue order, and the counter
//      taxonomy (a producer blocked in admit() that observes close() is NOT
//      a shed).
//   2. Property-style scheduling invariants — seeded random interleavings
//      assert laws that must hold for EVERY schedule: no realtime frame is
//      shed while best-effort traffic from the same queue is being
//      admitted, batch deadlines are non-decreasing under EDF, and
//      conservation (admitted == served + shed + in-flight at shutdown).
//   3. End-to-end: a saturated InferenceServer run sheds only best-effort
//      frames, conserves per-camera counts exactly, and every frame it DID
//      serve is bit-identical to an unloaded serve of the same input.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/snappix.h"
#include "runtime/batcher.h"
#include "runtime/camera.h"
#include "runtime/frame_queue.h"
#include "runtime/scheduler.h"
#include "runtime/server.h"
#include "runtime/stats.h"
#include "util/rng.h"

namespace snappix {
namespace {

using runtime::BatchAggregator;
using runtime::BatchPolicy;
using runtime::Clock;
using runtime::Frame;
using runtime::FrameQueue;
using runtime::InferenceServer;
using runtime::PushResult;
using runtime::QosClass;
using runtime::ServerConfig;
using runtime::ShedReason;
using runtime::Task;

Frame make_frame(int camera, std::int64_t sequence, QosClass qos,
                 Clock::time_point deadline = Clock::time_point{}) {
  Frame frame;
  frame.camera_id = camera;
  frame.sequence = sequence;
  frame.qos = qos;
  frame.deadline = deadline;
  frame.coded = Tensor::full(Shape{2, 2}, static_cast<float>(sequence));
  return frame;
}

// Collects every observer callback for exact-count assertions.
struct ShedLog {
  std::mutex mutex;
  std::vector<std::pair<std::pair<int, std::int64_t>, ShedReason>> sheds;

  void install(FrameQueue& queue) {
    queue.set_shed_observer([this](const Frame& frame, ShedReason reason) {
      std::lock_guard<std::mutex> lock(mutex);
      sheds.emplace_back(std::make_pair(frame.camera_id, frame.sequence), reason);
    });
  }
  std::size_t count(ShedReason reason) {
    std::lock_guard<std::mutex> lock(mutex);
    std::size_t n = 0;
    for (const auto& s : sheds) {
      n += s.second == reason ? 1 : 0;
    }
    return n;
  }
  std::size_t total() {
    std::lock_guard<std::mutex> lock(mutex);
    return sheds.size();
  }
};

// --- 1. deterministic saturation: admission control --------------------------

TEST(Admission, BestEffortShedsExactlyTheExcessOnAFullQueue) {
  FrameQueue queue(1);
  ShedLog log;
  log.install(queue);

  ASSERT_EQ(queue.admit(make_frame(0, 0, QosClass::kStandard)), PushResult::kAccepted);
  // The queue is full: every best-effort admit is shed, exactly counted,
  // without blocking (these calls return immediately on a queue nobody is
  // draining — the non-blocking contract IS the test).
  constexpr int kExcess = 7;
  for (int i = 0; i < kExcess; ++i) {
    EXPECT_EQ(queue.admit(make_frame(1, i, QosClass::kBestEffort)), PushResult::kShed);
  }
  EXPECT_EQ(queue.shed_admission(), static_cast<std::uint64_t>(kExcess));
  EXPECT_EQ(queue.shed_expired(), 0U);
  EXPECT_EQ(log.count(ShedReason::kQueueFull), static_cast<std::size_t>(kExcess));
  EXPECT_EQ(queue.total_pushed(), 1U);  // sheds never entered the queue
  EXPECT_EQ(queue.depth(), 1U);

  // Capacity freed -> best-effort admits again: shedding is a point-in-time
  // decision, not a penalty on the camera.
  Frame out;
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(queue.admit(make_frame(1, kExcess, QosClass::kBestEffort)),
            PushResult::kAccepted);
  EXPECT_EQ(queue.shed_admission(), static_cast<std::uint64_t>(kExcess));
}

TEST(Admission, RealtimeAndStandardBlockUnderBackpressureAndAreNeverShed) {
  FrameQueue queue(1);
  ShedLog log;
  log.install(queue);
  ASSERT_EQ(queue.admit(make_frame(0, 0, QosClass::kStandard)), PushResult::kAccepted);

  std::atomic<int> admitted{0};  // order: relaxed tally, checked after joins
  std::thread rt([&] {
    EXPECT_EQ(queue.admit(make_frame(1, 0, QosClass::kRealtime)), PushResult::kAccepted);
    admitted.fetch_add(1, std::memory_order_relaxed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(admitted.load(std::memory_order_relaxed), 0);  // backpressure holds

  Frame out;
  ASSERT_TRUE(queue.pop(out));  // frees the slot; the blocked admit completes
  rt.join();
  EXPECT_EQ(admitted.load(std::memory_order_relaxed), 1);
  EXPECT_EQ(queue.shed_admission(), 0U);
  EXPECT_EQ(log.total(), 0U);
}

// Regression (counter taxonomy): a producer blocked on a full queue that
// observes close() was NOT shed — its frame never entered the runtime and
// must not appear in any shed counter. kClosed and kShed are distinct
// outcomes, and admission on an already-closed queue is kClosed for every
// QoS class (including best-effort, whose frame would have been shed a
// moment earlier).
TEST(Admission, BlockedProducerObservingCloseIsClosedNotShed) {
  FrameQueue queue(1);
  ShedLog log;
  log.install(queue);
  ASSERT_EQ(queue.admit(make_frame(0, 0, QosClass::kStandard)), PushResult::kAccepted);

  std::atomic<int> closed_seen{0};  // order: relaxed tally, checked after joins
  std::thread blocked([&] {
    if (queue.admit(make_frame(1, 0, QosClass::kRealtime)) == PushResult::kClosed) {
      closed_seen.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  blocked.join();
  EXPECT_EQ(closed_seen.load(std::memory_order_relaxed), 1);

  EXPECT_EQ(queue.admit(make_frame(2, 0, QosClass::kBestEffort)), PushResult::kClosed);
  EXPECT_EQ(queue.admit(make_frame(2, 1, QosClass::kStandard)), PushResult::kClosed);

  EXPECT_EQ(queue.shed_admission(), 0U);
  EXPECT_EQ(queue.shed_expired(), 0U);
  EXPECT_EQ(log.total(), 0U);
  EXPECT_EQ(queue.total_pushed(), 1U);
}

// --- 1. deterministic saturation: drop-late ----------------------------------

TEST(DropLate, ExpiredFramesAreShedAtDequeueNeverServed) {
  FrameQueue queue(8);
  ShedLog log;
  log.install(queue);
  const Clock::time_point now = Clock::now();

  // Already expired at admission time: admission does NOT shed it (deadlines
  // are judged at dequeue, where "serving it stale" would happen)...
  ASSERT_EQ(queue.admit(make_frame(0, 0, QosClass::kStandard, now - std::chrono::seconds(1))),
            PushResult::kAccepted);
  ASSERT_EQ(queue.admit(make_frame(1, 0, QosClass::kStandard)), PushResult::kAccepted);
  ASSERT_EQ(queue.admit(make_frame(0, 1, QosClass::kStandard, now - std::chrono::seconds(1))),
            PushResult::kAccepted);

  // ...pop sheds BOTH expired frames and serves the live one.
  Frame out;
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out.camera_id, 1);
  EXPECT_EQ(queue.shed_expired(), 2U);
  EXPECT_EQ(log.count(ShedReason::kDeadline), 2U);
  EXPECT_EQ(queue.depth(), 0U);

  // A queue holding ONLY expired frames drains to "closed and drained", not
  // to a stale serve.
  ASSERT_EQ(queue.admit(make_frame(2, 0, QosClass::kStandard, now - std::chrono::seconds(1))),
            PushResult::kAccepted);
  queue.close();
  EXPECT_FALSE(queue.pop(out));
  EXPECT_EQ(queue.shed_expired(), 3U);
  EXPECT_TRUE(queue.exhausted());

  // Conservation ledger: admitted == served + shed_expired + residue(0).
  EXPECT_EQ(queue.total_pushed(), 4U);  // 1 served + 3 expired
}

TEST(DropLate, ExpiredHoldbackIsShedNotServedStale) {
  FrameQueue queue(8);
  ShedLog log;
  log.install(queue);
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_delay = std::chrono::microseconds(0);  // greedy

  // Frame A (key 1) then frame B (key 2), with EQUAL deadlines so EDF
  // tie-breaks to FIFO (A pops first, B goes to holdback). The budget is
  // generous enough that A is served live; B's expires while it sits in
  // holdback.
  const Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(50);
  Frame a = make_frame(0, 0, QosClass::kStandard, deadline);
  a.pattern_id = 1;
  Frame b = make_frame(1, 0, QosClass::kStandard, deadline);
  b.pattern_id = 2;
  ASSERT_EQ(queue.admit(std::move(a)), PushResult::kAccepted);
  ASSERT_EQ(queue.admit(std::move(b)), PushResult::kAccepted);
  queue.close();

  BatchAggregator aggregator(queue, policy);
  std::vector<Frame> batch;
  ASSERT_TRUE(aggregator.next_batch(batch));  // [A]; B goes to holdback
  ASSERT_EQ(batch.size(), 1U);
  EXPECT_EQ(batch[0].pattern_id, 1U);
  EXPECT_EQ(aggregator.last_flush_reason(), runtime::FlushReason::kHoldback);

  std::this_thread::sleep_for(std::chrono::milliseconds(80));  // B expires
  EXPECT_FALSE(aggregator.next_batch(batch));  // B shed, queue exhausted
  EXPECT_EQ(queue.shed_expired(), 1U);
  ASSERT_EQ(log.count(ShedReason::kDeadline), 1U);
}

TEST(DropLate, StealShedsExpiredAndNeverTakesRealtimeFrames) {
  FrameQueue queue(8);
  ShedLog log;
  log.install(queue);
  const Clock::time_point past = Clock::now() - std::chrono::seconds(1);

  // Realtime tail: the whole steal is refused, the queue untouched.
  ASSERT_EQ(queue.admit(make_frame(0, 0, QosClass::kStandard)), PushResult::kAccepted);
  ASSERT_EQ(queue.admit(make_frame(1, 0, QosClass::kRealtime)), PushResult::kAccepted);
  std::vector<Frame> stolen;
  EXPECT_FALSE(queue.steal_tail(stolen, 8));
  EXPECT_EQ(queue.depth(), 2U);

  // Standard frames behind the realtime one ARE stealable — the run stops
  // where the realtime frame starts, protecting it, not its neighbors.
  ASSERT_EQ(queue.admit(make_frame(0, 1, QosClass::kStandard)), PushResult::kAccepted);
  ASSERT_EQ(queue.admit(make_frame(0, 2, QosClass::kBestEffort, past)),
            PushResult::kAccepted);  // expired: shed by the steal, not exported
  ASSERT_EQ(queue.admit(make_frame(0, 3, QosClass::kStandard)), PushResult::kAccepted);
  ASSERT_TRUE(queue.steal_tail(stolen, 8));
  ASSERT_EQ(stolen.size(), 2U);  // sequences 1 and 3; the expired frame 2 shed
  EXPECT_EQ(stolen[0].sequence, 1);
  EXPECT_EQ(stolen[1].sequence, 3);
  EXPECT_EQ(queue.shed_expired(), 1U);
  EXPECT_EQ(log.count(ShedReason::kDeadline), 1U);
  EXPECT_EQ(queue.depth(), 2U);  // the standard head + the protected realtime frame
}

// --- 1. deterministic saturation: EDF dequeue --------------------------------

TEST(Edf, PopServesEarliestDeadlineFirstThenFifoAmongUndeadlined) {
  FrameQueue queue(8);
  const Clock::time_point base = Clock::now() + std::chrono::seconds(10);
  // Mixed insert order: deadlines 3s/1s/2s out of order, plus two
  // no-deadline frames bracketing them.
  ASSERT_TRUE(queue.push(make_frame(9, 0, QosClass::kStandard)));
  ASSERT_TRUE(queue.push(make_frame(3, 0, QosClass::kStandard, base + std::chrono::seconds(3))));
  ASSERT_TRUE(queue.push(make_frame(1, 0, QosClass::kStandard, base + std::chrono::seconds(1))));
  ASSERT_TRUE(queue.push(make_frame(9, 1, QosClass::kStandard)));
  ASSERT_TRUE(queue.push(make_frame(2, 0, QosClass::kStandard, base + std::chrono::seconds(2))));

  std::vector<int> order;
  Frame out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.pop(out));
    order.push_back(out.camera_id * 10 + static_cast<int>(out.sequence));
  }
  // Deadlined frames first, by deadline; then the undeadlined in FIFO order.
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30, 90, 91}));
}

TEST(Edf, QueueWithoutDeadlinesDegradesToExactFifo) {
  FrameQueue queue(8);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue.push(make_frame(0, i, QosClass::kStandard)));
  }
  Frame out;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.sequence, i);  // byte-for-byte the pre-QoS FIFO contract
  }
}

// --- 1. scheduler/stats plumbing: shed observer taxonomy ---------------------

// The scheduler's register_queue installs a RuntimeStats shed observer; this
// pins the full pipeline: queue shed -> observer -> per-(qos, reason)
// registry counters + per-camera rows in the summary.
TEST(ShedAccounting, QueueShedsFlowIntoRuntimeStatsPerCameraPerReason) {
  runtime::RuntimeStats stats;
  runtime::StreamScheduler scheduler(stats, /*threads=*/1);
  FrameQueue queue(1);
  scheduler.register_queue(queue);

  ASSERT_EQ(queue.admit(make_frame(0, 0, QosClass::kStandard)), PushResult::kAccepted);
  EXPECT_EQ(queue.admit(make_frame(7, 0, QosClass::kBestEffort)), PushResult::kShed);
  EXPECT_EQ(queue.admit(make_frame(7, 1, QosClass::kBestEffort)), PushResult::kShed);
  Frame out;
  ASSERT_TRUE(queue.pop(out));
  ASSERT_EQ(queue.admit(make_frame(8, 0, QosClass::kBestEffort,
                                   Clock::now() - std::chrono::seconds(1))),
            PushResult::kAccepted);
  queue.close();
  EXPECT_FALSE(queue.pop(out));  // drop-late sheds camera 8's frame
  stats.record_deadline_miss(9);

  const runtime::RuntimeSummary summary = stats.summary(1.0);
  EXPECT_EQ(summary.shed_frames, 3U);
  EXPECT_EQ(summary.shed_queue_full, 2U);
  EXPECT_EQ(summary.shed_deadline, 1U);
  EXPECT_EQ(summary.shed_realtime, 0U);
  EXPECT_EQ(summary.shed_standard, 0U);
  EXPECT_EQ(summary.shed_best_effort, 3U);
  EXPECT_EQ(summary.deadline_misses, 1U);
  ASSERT_EQ(summary.shed_cameras.size(), 3U);  // cameras 7, 8, 9 — sorted
  EXPECT_EQ(summary.shed_cameras[0].first, 7);
  EXPECT_EQ(summary.shed_cameras[0].second.queue_full, 2U);
  EXPECT_EQ(summary.shed_cameras[0].second.deadline, 0U);
  EXPECT_EQ(summary.shed_cameras[1].first, 8);
  EXPECT_EQ(summary.shed_cameras[1].second.deadline, 1U);
  EXPECT_EQ(summary.shed_cameras[2].first, 9);
  EXPECT_EQ(summary.shed_cameras[2].second.deadline_misses, 1U);
}

TEST(ShedAccounting, ServerConfigValidatesDeadlineBudget) {
  core::SnapPixConfig sys_cfg;
  sys_cfg.image = 16;
  sys_cfg.frames = 8;
  sys_cfg.num_classes = 4;
  sys_cfg.seed = 3;
  core::SnapPixSystem system(sys_cfg);
  ServerConfig config;
  config.deadline_budget = std::chrono::microseconds(-1);
  EXPECT_THROW(InferenceServer(system, config), std::invalid_argument);
}

// --- 2. property-style scheduling invariants ---------------------------------

// Seeded single-threaded interleavings of admits and pops: for EVERY
// schedule, (a) a realtime admit never sheds — even while best-effort admits
// from the same queue are being rejected, and (b) the conservation ledger
// balances exactly: admitted == served + shed_expired + in-flight at close.
TEST(OverloadProperty, RealtimeNeverShedWhileBestEffortAdmittedOrRejected) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    FrameQueue queue(3);
    ShedLog log;
    log.install(queue);
    std::uint64_t realtime_sheds = 0;
    std::uint64_t best_effort_outcomes[2] = {0, 0};  // [accepted, shed]
    std::uint64_t served = 0;
    std::int64_t seq = 0;

    for (int op = 0; op < 200; ++op) {
      const std::int64_t draw = rng.uniform_int(0, 9);
      if (draw < 3 && queue.depth() > 0) {
        Frame out;
        ASSERT_TRUE(queue.pop(out));
        ++served;
        continue;
      }
      if (draw < 6) {
        // Realtime, no deadline (its latency protection comes from admission
        // and steal policy, not expiry). Pop first if full: single-threaded
        // realtime admits on a full queue would otherwise block forever —
        // which is itself the invariant (they block, they don't shed).
        if (queue.depth() == queue.capacity()) {
          Frame out;
          ASSERT_TRUE(queue.pop(out));
          ++served;
        }
        const PushResult r = queue.admit(make_frame(1, seq++, QosClass::kRealtime));
        ASSERT_EQ(r, PushResult::kAccepted);
        realtime_sheds += r == PushResult::kShed ? 1 : 0;
      } else {
        const PushResult r = queue.admit(make_frame(2, seq++, QosClass::kBestEffort));
        ASSERT_NE(r, PushResult::kClosed);
        ++best_effort_outcomes[r == PushResult::kShed ? 1 : 0];
      }
    }

    EXPECT_EQ(realtime_sheds, 0U) << "seed " << seed;
    // Non-vacuous: the schedule really produced both best-effort outcomes.
    EXPECT_GT(best_effort_outcomes[0], 0U) << "seed " << seed;
    EXPECT_GT(best_effort_outcomes[1], 0U) << "seed " << seed;
    EXPECT_EQ(log.count(ShedReason::kQueueFull), best_effort_outcomes[1]);

    // Conservation at shutdown: admitted == served + shed + in-flight.
    queue.close();
    const std::size_t in_flight = queue.depth();
    EXPECT_EQ(queue.total_pushed(),
              served + queue.shed_expired() + in_flight)
        << "seed " << seed;
    EXPECT_EQ(queue.shed_admission(), best_effort_outcomes[1]) << "seed " << seed;
  }
}

// Seeded pre-filled queues (no concurrent pushes): under the EDF policy every
// batch the aggregator forms has non-decreasing deadlines, with "no deadline"
// ordering strictly after every deadlined frame.
TEST(OverloadProperty, BatchDeadlinesNonDecreasingUnderEdf) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    FrameQueue queue(32);
    const Clock::time_point base = Clock::now() + std::chrono::seconds(30);
    std::int64_t seq = 0;
    for (int i = 0; i < 24; ++i) {
      // ~1/4 undeadlined; the rest spread over [base, base + 1000ms) — far
      // enough out that nothing expires mid-test.
      const std::int64_t ms = rng.uniform_int(0, 999);
      const bool undeadlined = rng.uniform_int(0, 3) == 0;
      ASSERT_TRUE(queue.push(make_frame(
          0, seq++, QosClass::kStandard,
          undeadlined ? Clock::time_point{} : base + std::chrono::milliseconds(ms))));
    }
    queue.close();

    BatchPolicy policy;
    policy.max_batch = 5;
    policy.max_delay = std::chrono::microseconds(0);
    BatchAggregator aggregator(queue, policy);
    std::vector<Frame> batch;
    std::size_t total = 0;
    bool saw_undeadlined_globally = false;
    while (aggregator.next_batch(batch)) {
      total += batch.size();
      for (std::size_t i = 1; i < batch.size(); ++i) {
        const Frame& prev = batch[i - 1];
        const Frame& cur = batch[i];
        if (!prev.has_deadline()) {
          // Undeadlined frames sort after every deadlined frame, so nothing
          // with a deadline may follow one.
          EXPECT_FALSE(cur.has_deadline()) << "seed " << seed << " pos " << i;
        } else if (cur.has_deadline()) {
          EXPECT_LE(prev.deadline.time_since_epoch().count(),
                    cur.deadline.time_since_epoch().count())
              << "seed " << seed << " pos " << i;
        }
        saw_undeadlined_globally |= !cur.has_deadline();
      }
    }
    EXPECT_EQ(total, 24U) << "seed " << seed;
    EXPECT_TRUE(saw_undeadlined_globally) << "seed " << seed;  // mix was real
  }
}

// Multi-threaded conservation: producers of every QoS class race two
// consumers and a thief on a capacity-2 queue, with a mid-run close. For
// every interleaving: accepted == surfaced + shed_expired + drained residue,
// admission sheds equal the best-effort rejections exactly, and no realtime
// frame is ever shed.
TEST(OverloadProperty, ConservationHoldsAcrossThreadedInterleavings) {
  for (int round = 0; round < 10; ++round) {
    FrameQueue queue(2);
    runtime::RuntimeStats stats;
    runtime::StreamScheduler scheduler(stats, /*threads=*/1);
    scheduler.register_queue(queue);  // installs the stats shed observer

    std::atomic<std::uint64_t> accepted{0};   // order: relaxed tally, read after joins
    std::atomic<std::uint64_t> rejected{0};   // order: relaxed tally, read after joins
    std::atomic<std::uint64_t> surfaced{0};   // order: relaxed tally, read after joins

    const Clock::time_point tight = Clock::now();  // realtime/standard: no deadline
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      const QosClass qos = p == 0   ? QosClass::kRealtime
                           : p == 1 ? QosClass::kStandard
                                    : QosClass::kBestEffort;
      producers.emplace_back([&, p, qos] {
        for (std::int64_t i = 0; i < 120; ++i) {
          // Every 5th best-effort frame carries an already-expired deadline,
          // so drop-late and admission sheds interleave with serves.
          Frame frame = make_frame(p, i, qos,
                                   (qos == QosClass::kBestEffort && i % 5 == 0)
                                       ? tight
                                       : Clock::time_point{});
          const PushResult r = queue.admit(std::move(frame));
          if (r == PushResult::kClosed) {
            break;
          }
          (r == PushResult::kAccepted ? accepted : rejected)
              .fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::vector<std::thread> consumers;
    for (int c = 0; c < 2; ++c) {
      consumers.emplace_back([&] {
        Frame out;
        while (queue.pop(out)) {
          surfaced.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::thread thief([&] {
      std::vector<Frame> batch;
      while (!queue.exhausted()) {
        if (queue.steal_tail(batch, 2)) {
          surfaced.fetch_add(batch.size(), std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });

    for (auto& t : producers) {
      t.join();
    }
    queue.close();
    for (auto& t : consumers) {
      t.join();
    }
    thief.join();

    // The ledger balances exactly, every round, every interleaving.
    EXPECT_EQ(queue.total_pushed(), accepted.load(std::memory_order_relaxed));
    EXPECT_EQ(queue.shed_admission(), rejected.load(std::memory_order_relaxed));
    EXPECT_EQ(accepted.load(std::memory_order_relaxed),
              surfaced.load(std::memory_order_relaxed) + queue.shed_expired())
        << "round " << round;

    const runtime::RuntimeSummary summary = stats.summary(1.0);
    EXPECT_EQ(summary.shed_frames, queue.shed_admission() + queue.shed_expired());
    EXPECT_EQ(summary.shed_realtime, 0U);
    EXPECT_EQ(summary.shed_standard, 0U);
  }
}

// --- 3. end-to-end: saturated server run -------------------------------------

// A saturated single-shard server with a realtime camera in a best-effort
// fleet: per-camera conservation is exact (offered == served + shed), the
// realtime camera is never shed, and every frame that WAS served is
// bit-identical to an unloaded (batch-1, sequential) serve of the same
// coded input — overload changes WHICH frames are answered, never the bits
// of an answer.
TEST(SaturatedServer, ShedsOnlyBestEffortConservesExactlyAndServesBitIdentical) {
  core::SnapPixConfig sys_cfg;
  sys_cfg.image = 16;
  sys_cfg.frames = 8;
  sys_cfg.num_classes = 4;
  sys_cfg.seed = 3;
  core::SnapPixSystem system(sys_cfg);

  // Deterministic replay buffers; reference predictions computed sequentially
  // (engines are batch-invariant, so batch-1 is the unloaded baseline).
  constexpr int kCameras = 4;
  constexpr int kBufferFrames = 6;
  constexpr std::int64_t kFramesPerCamera = 40;
  std::vector<std::vector<Tensor>> buffers;
  std::vector<std::vector<std::int64_t>> reference;
  for (int cam = 0; cam < kCameras; ++cam) {
    Rng rng(100 + static_cast<std::uint64_t>(cam));
    std::vector<Tensor> coded;
    std::vector<std::int64_t> predictions;
    for (int i = 0; i < kBufferFrames; ++i) {
      std::vector<float> data(16 * 16);
      for (float& v : data) {
        v = rng.uniform(0.0F, 1.0F);
      }
      Tensor frame = Tensor::from_vector(std::move(data), Shape{16, 16});
      const Tensor batch1 = Tensor::from_vector(frame.data(), Shape{1, 16, 16});
      predictions.push_back(system.classify_coded(batch1)[0]);
      coded.push_back(std::move(frame));
    }
    buffers.push_back(std::move(coded));
    reference.push_back(std::move(predictions));
  }

  ServerConfig config;
  config.batch.max_batch = 4;
  config.shards = 1;
  config.queue_capacity = 2;  // tiny: replay producers outrun inference
  config.qos = QosClass::kBestEffort;  // fleet default: absorb the overload
  InferenceServer server(system, config);
  for (int cam = 0; cam < kCameras; ++cam) {
    auto camera = std::make_unique<runtime::ReplayCameraSource>(
        cam, system.pattern_ref(), buffers[static_cast<std::size_t>(cam)],
        std::vector<std::int64_t>{});
    if (cam == 0) {
      camera->set_qos(QosClass::kRealtime);  // override beats the fleet default
    }
    server.add_camera(std::move(camera));
  }

  const std::vector<runtime::TaskResult> results = server.run(kFramesPerCamera);
  const runtime::RuntimeSummary summary = server.summary();

  // Bit-identity of the served subset: every answer matches the unloaded
  // baseline for that camera and replay slot.
  std::map<int, std::uint64_t> served;
  for (const runtime::TaskResult& r : results) {
    ++served[r.camera_id];
    const auto& expect =
        reference[static_cast<std::size_t>(r.camera_id)]
                 [static_cast<std::size_t>(r.sequence % kBufferFrames)];
    ASSERT_EQ(r.predicted, expect)
        << "camera " << r.camera_id << " sequence " << r.sequence;
  }

  // Realtime: everything served, nothing shed.
  EXPECT_EQ(served[0], static_cast<std::uint64_t>(kFramesPerCamera));
  EXPECT_EQ(summary.shed_realtime, 0U);
  for (const auto& [camera_id, counters] : summary.shed_cameras) {
    EXPECT_NE(camera_id, 0) << "realtime camera shed a frame";
    (void)counters;
  }

  // Exact per-camera conservation: offered == served + shed (the run drains
  // every queue before returning, so nothing is in flight afterwards).
  std::map<int, std::uint64_t> shed;
  for (const auto& [camera_id, counters] : summary.shed_cameras) {
    shed[camera_id] = counters.queue_full + counters.deadline;
  }
  for (int cam = 0; cam < kCameras; ++cam) {
    EXPECT_EQ(served[cam] + shed[cam], static_cast<std::uint64_t>(kFramesPerCamera))
        << "camera " << cam;
  }
  EXPECT_EQ(summary.shed_frames, summary.shed_best_effort);

  // The overload was real: best-effort traffic actually got shed (replay
  // producers outrun a capacity-2 queue by orders of magnitude). Per-camera
  // best-effort progress is NOT asserted — unblocked producers may burn their
  // whole budget against a full queue, and that is correct shedding, not a
  // bug; the fairness story under sustained load belongs to the saturation
  // bench, which paces its offered load.
  EXPECT_GT(summary.shed_best_effort, 0U);
}

}  // namespace
}  // namespace snappix
