// Gradient-check tests: every differentiable op is verified against central
// differences, plus tape-engine behaviour (accumulation, reuse, no-grad).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "gradcheck.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace snappix {
namespace {

using testing::max_grad_error;

constexpr float kTol = 2e-2F;  // central differences in float32

TEST(Autograd, AddBackward) {
  Rng rng(1);
  Tensor a = Tensor::randn(Shape{3, 4}, rng, 1.0F, true);
  Tensor b = Tensor::randn(Shape{3, 4}, rng, 1.0F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(add(a, b)); }, {a, b}), kTol);
}

TEST(Autograd, MulBackwardBroadcast) {
  Rng rng(2);
  Tensor a = Tensor::randn(Shape{3, 4}, rng, 1.0F, true);
  Tensor b = Tensor::randn(Shape{4}, rng, 1.0F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(mul(a, b)); }, {a, b}), kTol);
}

TEST(Autograd, DivBackward) {
  Rng rng(3);
  Tensor a = Tensor::randn(Shape{2, 3}, rng, 1.0F, true);
  Tensor b = add_scalar(Tensor::rand_uniform(Shape{2, 3}, rng, 0.5F, 1.5F), 0.0F);
  b.set_requires_grad(true);
  EXPECT_LT(max_grad_error([&] { return sum_all(div(a, b)); }, {a, b}), kTol);
}

TEST(Autograd, BroadcastColumnBackward) {
  Rng rng(4);
  Tensor a = Tensor::randn(Shape{3, 4}, rng, 1.0F, true);
  Tensor c = Tensor::randn(Shape{3, 1}, rng, 1.0F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(mul(a, c)); }, {a, c}), kTol);
}

TEST(Autograd, UnaryChain) {
  Rng rng(5);
  Tensor a = Tensor::rand_uniform(Shape{8}, rng, 0.1F, 2.0F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(log(add_scalar(square(a), 1.0F))); }, {a}), kTol);
}

TEST(Autograd, ExpSqrtSigmoidTanh) {
  Rng rng(6);
  Tensor a = Tensor::rand_uniform(Shape{6}, rng, 0.2F, 1.5F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(exp(a)); }, {a}), kTol);
  EXPECT_LT(max_grad_error([&] { return sum_all(snappix::sqrt(a)); }, {a}), kTol);
  EXPECT_LT(max_grad_error([&] { return sum_all(sigmoid(a)); }, {a}), kTol);
  EXPECT_LT(max_grad_error([&] { return sum_all(snappix::tanh(a)); }, {a}), kTol);
}

TEST(Autograd, GeluBackward) {
  Rng rng(7);
  Tensor a = Tensor::randn(Shape{10}, rng, 2.0F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(gelu(a)); }, {a}), kTol);
}

TEST(Autograd, PowScalarBackward) {
  Rng rng(8);
  Tensor a = Tensor::rand_uniform(Shape{5}, rng, 0.5F, 2.0F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(pow_scalar(a, 3.0F)); }, {a}), kTol);
}

TEST(Autograd, MatmulBackward2d) {
  Rng rng(9);
  Tensor a = Tensor::randn(Shape{3, 4}, rng, 1.0F, true);
  Tensor b = Tensor::randn(Shape{4, 2}, rng, 1.0F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(matmul(a, b)); }, {a, b}), kTol);
}

TEST(Autograd, MatmulBackwardBatched) {
  Rng rng(10);
  Tensor a = Tensor::randn(Shape{2, 3, 4}, rng, 1.0F, true);
  Tensor b = Tensor::randn(Shape{2, 4, 2}, rng, 1.0F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(matmul(a, b)); }, {a, b}), kTol);
}

TEST(Autograd, MatmulBackwardBroadcastRhs) {
  Rng rng(11);
  Tensor a = Tensor::randn(Shape{2, 3, 4}, rng, 1.0F, true);
  Tensor b = Tensor::randn(Shape{4, 2}, rng, 1.0F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(matmul(a, b)); }, {a, b}), kTol);
}

TEST(Autograd, MatmulBackwardTileBoundaryShapes) {
  // The register-tiled backward kernels (gemm_nt 4x4 tiles, gemm_tn 4x8
  // tiles) have row/column tails at every non-multiple size; gradcheck a
  // spread of shapes that straddle the boundaries from both sides.
  const std::vector<std::array<std::int64_t, 3>> shapes = {
      {1, 1, 1}, {3, 5, 2}, {4, 4, 8}, {5, 9, 11}, {8, 16, 4}, {13, 7, 9}};
  std::uint64_t seed = 100;
  for (const auto& [m, k, n] : shapes) {
    Rng rng(seed++);
    Tensor a = Tensor::randn(Shape{m, k}, rng, 1.0F, true);
    Tensor b = Tensor::randn(Shape{k, n}, rng, 1.0F, true);
    EXPECT_LT(max_grad_error([&] { return sum_all(matmul(a, b)); }, {a, b}), kTol)
        << "shape " << m << "x" << k << "x" << n;
  }
}

TEST(Autograd, SumMeanAxisBackward) {
  Rng rng(12);
  Tensor a = Tensor::randn(Shape{3, 5}, rng, 1.0F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(square(sum(a, 0))); }, {a}), kTol);
  EXPECT_LT(max_grad_error([&] { return sum_all(square(mean(a, 1))); }, {a}), kTol);
}

TEST(Autograd, MaxBackwardRoutesToArgmax) {
  Tensor a = Tensor::from_vector({1, 5, 2, 7, 3, 4}, Shape{2, 3}).set_requires_grad(true);
  Tensor loss = sum_all(max_values(a, 1));
  loss.backward();
  const auto g = a.grad().data();
  EXPECT_EQ(g[1], 1.0F);  // argmax of row 0
  EXPECT_EQ(g[3], 1.0F);  // argmax of row 1
  EXPECT_EQ(g[0] + g[2] + g[4] + g[5], 0.0F);
}

TEST(Autograd, SoftmaxBackward) {
  Rng rng(13);
  Tensor a = Tensor::randn(Shape{3, 4}, rng, 1.0F, true);
  Tensor w = Tensor::randn(Shape{3, 4}, rng);
  EXPECT_LT(max_grad_error([&] { return sum_all(mul(softmax(a, -1), w)); }, {a}), kTol);
}

TEST(Autograd, LogSoftmaxBackward) {
  Rng rng(14);
  Tensor a = Tensor::randn(Shape{3, 4}, rng, 1.0F, true);
  Tensor w = Tensor::randn(Shape{3, 4}, rng);
  EXPECT_LT(max_grad_error([&] { return sum_all(mul(log_softmax(a, -1), w)); }, {a}), kTol);
}

TEST(Autograd, CrossEntropyBackward) {
  Rng rng(15);
  Tensor logits = Tensor::randn(Shape{4, 5}, rng, 1.0F, true);
  const std::vector<std::int64_t> labels{0, 2, 4, 1};
  EXPECT_LT(max_grad_error([&] { return cross_entropy(logits, labels); }, {logits}), kTol);
}

TEST(Autograd, MseBackwardBothSides) {
  Rng rng(16);
  Tensor p = Tensor::randn(Shape{6}, rng, 1.0F, true);
  Tensor t = Tensor::randn(Shape{6}, rng, 1.0F, true);
  EXPECT_LT(max_grad_error([&] { return mse_loss(p, t); }, {p, t}), kTol);
}

TEST(Autograd, MaskedMseBackward) {
  Rng rng(17);
  Tensor p = Tensor::randn(Shape{8}, rng, 1.0F, true);
  Tensor t = Tensor::randn(Shape{8}, rng);
  const Tensor m = Tensor::from_vector({1, 0, 1, 1, 0, 0, 1, 0}, Shape{8});
  EXPECT_LT(max_grad_error([&] { return masked_mse_loss(p, t, m); }, {p}), kTol);
}

TEST(Autograd, ReshapeTransposeBackward) {
  Rng rng(18);
  Tensor a = Tensor::randn(Shape{3, 4}, rng, 1.0F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(square(reshape(a, Shape{4, 3}))); }, {a}), kTol);
  EXPECT_LT(max_grad_error([&] { return sum_all(square(transpose(a, 0, 1))); }, {a}), kTol);
}

TEST(Autograd, PermuteBackward) {
  Rng rng(19);
  Tensor a = Tensor::randn(Shape{2, 3, 4}, rng, 1.0F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(square(permute(a, {2, 0, 1}))); }, {a}), kTol);
}

TEST(Autograd, ConcatSliceBackward) {
  Rng rng(20);
  Tensor a = Tensor::randn(Shape{2, 3}, rng, 1.0F, true);
  Tensor b = Tensor::randn(Shape{2, 3}, rng, 1.0F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(square(concat({a, b}, 0))); }, {a, b}), kTol);
  EXPECT_LT(max_grad_error([&] { return sum_all(square(slice(a, 1, 1, 3))); }, {a}), kTol);
}

TEST(Autograd, IndexSelectBackward) {
  Rng rng(21);
  Tensor a = Tensor::randn(Shape{5, 3}, rng, 1.0F, true);
  // Repeated index exercises gradient accumulation on the same row.
  EXPECT_LT(max_grad_error([&] { return sum_all(square(index_select(a, 0, {0, 2, 2, 4}))); }, {a}),
            kTol);
}

TEST(Autograd, Tile2dBackward) {
  Rng rng(22);
  Tensor a = Tensor::randn(Shape{2, 2}, rng, 1.0F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(square(tile_2d(a, 3, 2))); }, {a}), kTol);
}

TEST(Autograd, Conv2dBackwardAllInputs) {
  Rng rng(23);
  Tensor x = Tensor::randn(Shape{2, 2, 5, 5}, rng, 1.0F, true);
  Tensor w = Tensor::randn(Shape{3, 2, 3, 3}, rng, 0.5F, true);
  Tensor b = Tensor::randn(Shape{3}, rng, 0.5F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(square(conv2d(x, w, b, 2, 1))); }, {x, w, b}),
            5e-2F);
}

TEST(Autograd, Conv3dBackwardAllInputs) {
  Rng rng(24);
  Tensor x = Tensor::randn(Shape{1, 2, 4, 4, 4}, rng, 1.0F, true);
  Tensor w = Tensor::randn(Shape{2, 2, 2, 2, 2}, rng, 0.5F, true);
  Tensor b = Tensor::randn(Shape{2}, rng, 0.5F, true);
  EXPECT_LT(
      max_grad_error([&] { return sum_all(square(conv3d(x, w, b, 2, 2, 1, 1))); }, {x, w, b}),
      5e-2F);
}

TEST(Autograd, PoolBackward) {
  Rng rng(25);
  Tensor x = Tensor::randn(Shape{1, 2, 4, 4}, rng, 1.0F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(square(avg_pool2d(x, 2, 2))); }, {x}), kTol);
  EXPECT_LT(max_grad_error([&] { return sum_all(square(max_pool2d(x, 2, 2))); }, {x}), kTol);
  Tensor x3 = Tensor::randn(Shape{1, 1, 4, 4, 4}, rng, 1.0F, true);
  EXPECT_LT(max_grad_error([&] { return sum_all(square(avg_pool3d(x3, 2, 2, 2, 2))); }, {x3}),
            kTol);
}

TEST(Autograd, BinarizeSteStraightThrough) {
  Tensor w = Tensor::from_vector({0.2F, 0.8F, -0.5F, 1.5F}, Shape{4}).set_requires_grad(true);
  Tensor out = binarize_ste(w);
  EXPECT_TRUE(allclose(out, Tensor::from_vector({0, 1, 0, 1}, Shape{4})));
  sum_all(out).backward();
  const auto g = w.grad().data();
  // Inside the pass band [0,1] the gradient passes through; outside it is cut.
  EXPECT_EQ(g[0], 1.0F);
  EXPECT_EQ(g[1], 1.0F);
  EXPECT_EQ(g[2], 0.0F);
  EXPECT_EQ(g[3], 0.0F);
}

TEST(Autograd, GradAccumulatesAcrossBackwardCalls) {
  Tensor a = Tensor::scalar(2.0F, true);
  Tensor l1 = square(a);
  l1.backward();
  EXPECT_NEAR(a.grad().item(), 4.0F, 1e-5F);
  Tensor l2 = square(a);
  l2.backward();
  EXPECT_NEAR(a.grad().item(), 8.0F, 1e-5F);
  a.zero_grad();
  EXPECT_NEAR(a.grad().item(), 0.0F, 1e-7F);
}

TEST(Autograd, DiamondGraphAccumulates) {
  Tensor a = Tensor::scalar(3.0F, true);
  Tensor b = square(a);          // 9
  Tensor c = add(b, b);          // used twice
  sum_all(c).backward();
  // d/da [2 * a^2] = 4a = 12
  EXPECT_NEAR(a.grad().item(), 12.0F, 1e-4F);
}

TEST(Autograd, SharedLeafThroughTwoPaths) {
  Tensor a = Tensor::scalar(2.0F, true);
  Tensor out = add(mul(a, a), a);  // a^2 + a, d/da = 2a + 1 = 5
  out.backward();
  EXPECT_NEAR(a.grad().item(), 5.0F, 1e-5F);
}

TEST(Autograd, NoGradGuardStopsTape) {
  Tensor a = Tensor::scalar(2.0F, true);
  {
    NoGradGuard guard;
    Tensor b = square(a);
    EXPECT_FALSE(b.requires_grad());
  }
  Tensor c = square(a);
  EXPECT_TRUE(c.requires_grad());
}

TEST(Autograd, BackwardRequiresScalar) {
  Tensor a = Tensor::ones(Shape{2}, true);
  Tensor b = square(a);
  EXPECT_THROW(b.backward(), std::runtime_error);
}

TEST(Autograd, BackwardOnNonGradTensorThrows) {
  Tensor a = Tensor::scalar(1.0F);
  EXPECT_THROW(a.backward(), std::runtime_error);
}

TEST(Autograd, DropoutBackwardMatchesMask) {
  Rng rng(30);
  Tensor a = Tensor::ones(Shape{1000}, true);
  Tensor d = dropout(a, 0.5F, rng, /*training=*/true);
  sum_all(d).backward();
  // Gradient equals the dropout mask scaling; ~half the entries are 2.0.
  std::int64_t alive = 0;
  for (const float g : std::vector<float>(a.grad().data())) {
    EXPECT_TRUE(g == 0.0F || std::fabs(g - 2.0F) < 1e-6F);
    if (g != 0.0F) {
      ++alive;
    }
  }
  EXPECT_GT(alive, 350);
  EXPECT_LT(alive, 650);
}

TEST(Autograd, DropoutEvalIsIdentity) {
  Rng rng(31);
  Tensor a = Tensor::randn(Shape{16}, rng, 1.0F, true);
  Tensor d = dropout(a, 0.9F, rng, /*training=*/false);
  EXPECT_TRUE(allclose(d, a));
}

// Parameterized gradcheck sweep over a grid of composite expressions.
class CompositeGradTest : public ::testing::TestWithParam<int> {};

TEST_P(CompositeGradTest, EndToEndGradcheck) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  Tensor x = Tensor::randn(Shape{4, 6}, rng, 0.7F, true);
  Tensor w1 = Tensor::randn(Shape{6, 5}, rng, 0.5F, true);
  Tensor w2 = Tensor::randn(Shape{5, 3}, rng, 0.5F, true);
  auto fn = [&] {
    Tensor h = gelu(matmul(x, w1));
    Tensor y = matmul(h, w2);
    Tensor s = softmax(y, -1);
    return mean_all(square(s));
  };
  EXPECT_LT(max_grad_error(fn, {x, w1, w2}), 5e-2F);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompositeGradTest, ::testing::Range(100, 106));

}  // namespace
}  // namespace snappix
