// Integration tests: the SnapPixSystem end-to-end pipeline (Fig. 4),
// including the sensor-in-the-loop path through the cycle simulator.
#include <gtest/gtest.h>

#include "core/snappix.h"
#include "data/dataset.h"
#include "util/rng.h"

namespace snappix {
namespace {

using core::Backbone;
using core::SnapPixConfig;
using core::SnapPixSystem;

data::DatasetConfig small_data(int train_per_class = 10) {
  auto cfg = data::ucf101_like(/*frames=*/8, /*size=*/16);
  cfg.scene.num_classes = 3;
  cfg.scene.speed = 2.0F;
  cfg.train_per_class = train_per_class;
  cfg.test_per_class = 12;
  return cfg;
}

SnapPixConfig small_system() {
  SnapPixConfig cfg;
  cfg.image = 16;
  cfg.frames = 8;
  cfg.tile = 8;
  cfg.num_classes = 3;
  return cfg;
}

TEST(SnapPixSystem, ConstructionValidatesGeometry) {
  SnapPixConfig bad = small_system();
  bad.image = 20;  // not divisible by tile 8
  EXPECT_THROW(SnapPixSystem{bad}, std::runtime_error);
}

TEST(SnapPixSystem, DefaultPatternIsLongExposure) {
  SnapPixSystem system(small_system());
  EXPECT_EQ(system.pattern().total_exposed(), 8 * 8 * 8);
}

TEST(SnapPixSystem, SetPatternValidates) {
  SnapPixSystem system(small_system());
  EXPECT_THROW(system.set_pattern(ce::CePattern::long_exposure(16, 8)), std::runtime_error);
  EXPECT_THROW(system.set_pattern(ce::CePattern::long_exposure(8, 4)), std::runtime_error);
  Rng rng(1);
  system.set_pattern(ce::CePattern::random(8, 8, rng, 0.5F));
}

TEST(SnapPixSystem, EncodeShapeAndNormalization) {
  SnapPixSystem system(small_system());
  Rng rng(2);
  const Tensor videos = Tensor::rand_uniform(Shape{2, 8, 16, 16}, rng);
  const Tensor coded = system.encode(videos);
  EXPECT_EQ(coded.shape(), (Shape{2, 16, 16}));
  // Long exposure + per-exposure normalization keeps values in [0, 1].
  for (const float v : coded.data()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F + 1e-5F);
  }
}

TEST(SnapPixSystem, LearnPatternInstallsIt) {
  SnapPixSystem system(small_system());
  const data::VideoDataset dataset(small_data());
  train::PatternTrainConfig pc;
  pc.steps = 30;
  pc.batch_size = 4;
  const auto result = system.learn_pattern(dataset, pc);
  EXPECT_TRUE(system.pattern() == result.pattern);
  EXPECT_LT(system.pattern().total_exposed(), 8 * 8 * 8);  // not long exposure
}

TEST(SnapPixSystem, EndToEndTrainingBeatsChance) {
  SnapPixSystem system(small_system());
  const data::VideoDataset dataset(small_data(/*train_per_class=*/48));
  train::PatternTrainConfig pc;
  pc.steps = 40;
  pc.batch_size = 4;
  system.learn_pattern(dataset, pc);
  train::TrainConfig tc;
  tc.epochs = 25;
  tc.batch_size = 12;
  tc.lr = 3e-3F;
  const auto fit = system.train_action_recognition(dataset, tc);
  EXPECT_GT(fit.test_metric, 0.5F);  // chance = 1/3

  // classify() agrees with classify_logits() argmax.
  std::vector<std::int64_t> labels;
  std::vector<std::int64_t> idx{0, 1, 2};
  const Tensor videos = dataset.test_batch(idx, labels);
  const auto predicted = system.classify(videos);
  const auto logits = system.classify_logits(videos);
  const auto arg = argmax_last_axis(logits);
  EXPECT_EQ(predicted, arg);
}

TEST(SnapPixSystem, PretrainingReducesLossAndFeedsFinetune) {
  SnapPixSystem system(small_system());
  const data::VideoDataset dataset(small_data());
  const float loss1 = system.pretrain(dataset, /*epochs=*/1, /*lr=*/1e-3F, /*batch=*/10);
  const float loss5 = system.pretrain(dataset, /*epochs=*/4, /*lr=*/1e-3F, /*batch=*/10);
  EXPECT_LT(loss5, loss1);  // continued pre-training keeps reducing MSE
}

TEST(SnapPixSystem, ReconstructionShape) {
  SnapPixSystem system(small_system());
  Rng rng(3);
  const Tensor videos = Tensor::rand_uniform(Shape{2, 8, 16, 16}, rng);
  EXPECT_EQ(system.reconstruct(videos).shape(), (Shape{2, 8, 16, 16}));
}

TEST(SnapPixSystem, SensorInTheLoopMatchesMathematicalEncoding) {
  // The cycle-simulated capture and the mathematical encode must agree
  // closely enough that the classifier decision is identical.
  SnapPixSystem system(small_system());
  const data::VideoDataset dataset(small_data());
  Rng rng(4);
  system.set_pattern(ce::CePattern::random(8, 8, rng, 0.5F));
  train::TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 10;
  tc.lr = 2e-3F;
  system.train_action_recognition(dataset, tc);

  sensor::StackedSensor hw_sensor(system.default_sensor_config(), system.pattern());
  int agree = 0;
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    const auto& sample = dataset.test_sample(i);
    const Tensor batched = Tensor::from_vector(sample.video.data(), Shape{1, 8, 16, 16});
    const auto math_pred = system.classify(batched)[0];
    Rng cap_rng(static_cast<std::uint64_t>(100 + i));
    const auto hw_pred = system.classify_via_sensor(sample.video, hw_sensor, cap_rng);
    agree += math_pred == hw_pred ? 1 : 0;
  }
  EXPECT_GE(agree, 9);  // quantization may flip a borderline case
}

TEST(SnapPixSystem, SensorPatternMismatchThrows) {
  SnapPixSystem system(small_system());
  Rng rng(5);
  sensor::StackedSensor hw_sensor(system.default_sensor_config(),
                                  ce::CePattern::random(8, 8, rng, 0.5F));
  const Tensor scene = Tensor::zeros(Shape{8, 16, 16});
  EXPECT_THROW(system.classify_via_sensor(scene, hw_sensor, rng), std::runtime_error);
}

TEST(SnapPixSystem, BackboneConfigsExposed) {
  const auto s = core::backbone_config(Backbone::kSnapPixS, 32, 10);
  const auto b = core::backbone_config(Backbone::kSnapPixB, 32, 10);
  EXPECT_LT(s.dim, b.dim);
}

}  // namespace
}  // namespace snappix
