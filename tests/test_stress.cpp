// Race-hunting stress suite (docs/static-analysis.md). Every test here runs
// many threads over tiny capacities to force the interleavings the unit
// tests never hit: steal/close/shutdown collisions on FrameQueue, snapshot
// readers racing metric writers, EngineCache miss storms across precision
// tiers, trace export racing lane writers, and scheduler teardown mid-batch.
// The suite is part of the regular ctest run AND the whole point of the
// sanitizer CI jobs: a pass under -DSNAPPIX_SANITIZE=thread is the repo's
// "TSan-clean" invariant (docs/architecture.md), so every assertion below is
// written to hold under arbitrary interleavings — conservation laws and
// monotonicity, not timing assumptions. Thread/iteration counts are sized so
// the TSan run (≈10x slowdown, possibly one core) stays in seconds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ce/pattern.h"
#include "chaos.h"
#include "codec/bitplane.h"
#include "core/snappix.h"
#include "json_lite.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/camera.h"
#include "runtime/engine.h"
#include "runtime/engine_cache.h"
#include "runtime/frame_queue.h"
#include "runtime/health.h"
#include "runtime/scheduler.h"
#include "runtime/server.h"
#include "runtime/stats.h"
#include "transport/link.h"
#include "util/rng.h"

namespace snappix {
namespace {

namespace json = testing::json;

using runtime::EngineCache;
using runtime::EngineCacheConfig;
using runtime::Frame;
using runtime::FrameQueue;
using runtime::InferenceServer;
using runtime::PatternRef;
using runtime::Precision;
using runtime::ServerConfig;

Frame tiny_frame(int camera, std::int64_t sequence) {
  Frame frame;
  frame.camera_id = camera;
  frame.sequence = sequence;
  frame.coded = Tensor::full(Shape{2, 2}, static_cast<float>(sequence));
  return frame;
}

core::SnapPixConfig small_system_config() {
  core::SnapPixConfig cfg;
  cfg.image = 16;
  cfg.frames = 8;
  cfg.num_classes = 4;
  cfg.seed = 3;
  return cfg;
}

data::SceneConfig small_scene() {
  data::SceneConfig scene;
  scene.frames = 8;
  scene.height = 16;
  scene.width = 16;
  scene.num_classes = 4;
  return scene;
}

// --- FrameQueue: producers vs consumers vs a thief on a tiny queue -----------

TEST(FrameQueueStress, ProducersConsumersAndThiefConserveEveryFrame) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 2;
  constexpr std::int64_t kFramesEach = 200;
  FrameQueue queue(2);  // tiny: every push fights for capacity

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (std::int64_t i = 0; i < kFramesEach; ++i) {
        ASSERT_TRUE(queue.push(tiny_frame(p, i)));  // nobody closes mid-stream
      }
    });
  }

  std::mutex seen_mutex;
  std::vector<std::pair<int, std::int64_t>> seen;
  auto record = [&seen_mutex, &seen](const std::vector<Frame>& frames) {
    std::lock_guard<std::mutex> lock(seen_mutex);
    for (const Frame& f : frames) {
      seen.emplace_back(f.camera_id, f.sequence);
    }
  };

  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers + 1);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&queue, &record] {
      std::vector<Frame> local;
      Frame out;
      while (queue.pop(out)) {
        local.push_back(out);
      }
      record(local);
    });
  }
  // The thief steals key-pure tail runs until the queue can yield no more.
  consumers.emplace_back([&queue, &record] {
    std::vector<Frame> batch;
    while (!queue.exhausted()) {
      if (queue.steal_tail(batch, 3)) {
        record(batch);
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (auto& t : producers) {
    t.join();
  }
  queue.close();
  for (auto& t : consumers) {
    t.join();
  }

  // Conservation: every (camera, sequence) surfaced exactly once.
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kProducers) * kFramesEach);
  std::set<std::pair<int, std::int64_t>> unique(seen.begin(), seen.end());
  EXPECT_EQ(unique.size(), seen.size());
  EXPECT_EQ(queue.total_pushed(),
            static_cast<std::uint64_t>(kProducers) * kFramesEach);
  EXPECT_TRUE(queue.exhausted());
}

TEST(FrameQueueStress, CloseRacingPushPopStealNeverLosesAnAcceptedFrame) {
  // Many short rounds so close() lands at a different interleaving each time:
  // mid-push (producer blocked on the full queue), mid-pop, mid-steal.
  for (int round = 0; round < 25; ++round) {
    FrameQueue queue(1);
    std::atomic<std::int64_t> accepted{0};  // order: relaxed tally, read after joins
    std::atomic<std::int64_t> surfaced{0};  // order: relaxed tally, read after joins

    std::thread producer([&queue, &accepted] {
      for (std::int64_t i = 0; i < 60; ++i) {
        if (!queue.push(tiny_frame(0, i))) {
          break;  // closed under us: everything after is rejected too
        }
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
    std::thread consumer([&queue, &surfaced] {
      Frame out;
      while (queue.pop(out)) {
        surfaced.fetch_add(1, std::memory_order_relaxed);
      }
    });
    std::thread thief([&queue, &surfaced] {
      std::vector<Frame> batch;
      while (!queue.exhausted()) {
        if (queue.steal_tail(batch, 2)) {
          surfaced.fetch_add(static_cast<std::int64_t>(batch.size()),
                             std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
    std::thread closer([&queue, round] {
      // Vary the close point: immediately, after a yield, after a sleep.
      if (round % 3 == 1) {
        std::this_thread::yield();
      } else if (round % 3 == 2) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      queue.close();
    });

    producer.join();
    consumer.join();
    thief.join();
    closer.join();

    // close() drains rather than drops: every accepted frame surfaced through
    // pop or steal, no frame surfaced twice.
    EXPECT_EQ(surfaced.load(std::memory_order_relaxed),
              accepted.load(std::memory_order_relaxed))
        << "round " << round;
    EXPECT_TRUE(queue.exhausted());
  }
}

// --- metrics: snapshot readers racing lock-free writers ----------------------

TEST(MetricsStress, SnapshotsRacingObserversStaySaneAndEndExact) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.histogram("stress_latency_seconds");
  obs::Counter& counter = registry.counter("stress_events_total");
  obs::Gauge& gauge = registry.gauge("stress_depth");

  constexpr int kWriters = 3;
  constexpr int kObservationsEach = 4000;
  // Deterministic value stream with known extremes: writer w observes
  // (w + 1) * 1e-5 .. (w + 1) * 1e-5 * kObservationsEach.
  const double expected_min = 1e-5;
  const double expected_max = 1e-5 * kWriters * kObservationsEach;

  std::atomic<bool> writing{true};  // order: start/stop flag for the reader loop only
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&hist, &counter, &gauge, w] {
      for (int i = 1; i <= kObservationsEach; ++i) {
        hist.observe((w + 1) * 1e-5 * i);
        counter.add(1);
        gauge.set(static_cast<double>(i));
      }
    });
  }

  std::thread reader([&registry, &writing, expected_max] {
    std::uint64_t last_count = 0;
    while (writing.load(std::memory_order_relaxed)) {
      const obs::MetricsSnapshot snap = registry.snapshot();
      ASSERT_EQ(snap.histograms.size(), 1U);
      const obs::HistogramSnapshot& h = snap.histograms.front();
      // Mid-run invariants: monotone count, finite sane statistics, ordered
      // percentiles. (Exactness only holds after the writers join.)
      EXPECT_GE(h.count, last_count);
      last_count = h.count;
      EXPECT_TRUE(std::isfinite(h.sum));
      EXPECT_TRUE(std::isfinite(h.min));
      EXPECT_TRUE(std::isfinite(h.max));
      if (h.count > 0) {
        EXPECT_LE(h.min, h.max);
        EXPECT_GT(h.max, 0.0);
        EXPECT_LE(h.max, expected_max);
      }
      EXPECT_LE(h.p50, h.p95);
      EXPECT_LE(h.p95, h.p99);
      std::this_thread::yield();
    }
  });

  for (auto& t : writers) {
    t.join();
  }
  writing.store(false, std::memory_order_relaxed);
  reader.join();

  // Quiescent snapshot is exact — in particular min/max, whose CAS-fold
  // protocol this test exists to pin (a lost first-observer fold shows up
  // here as a wrong extreme).
  const obs::MetricsSnapshot final_snap = registry.snapshot();
  const obs::HistogramSnapshot& h = final_snap.histograms.front();
  EXPECT_EQ(h.count, static_cast<std::uint64_t>(kWriters) * kObservationsEach);
  EXPECT_DOUBLE_EQ(h.min, expected_min);
  EXPECT_DOUBLE_EQ(h.max, expected_max);
  ASSERT_EQ(final_snap.counters.size(), 1U);
  EXPECT_EQ(final_snap.counters.front().second,
            static_cast<std::uint64_t>(kWriters) * kObservationsEach);
}

// The end-to-end version of the same contract, through the server: snapshots
// taken MID-SERVE always render to valid JSON (json_lite is a strict parser:
// bare nan/inf, trailing commas, and torn syntax all throw) and every
// monotone statistic is <= its value in a quiescent post-run snapshot.
TEST(MetricsStress, MidServeJsonSnapshotsParseAndAreMonotoneVsFinal) {
  core::SnapPixSystem system(small_system_config());
  ServerConfig config;
  config.batch.max_batch = 4;
  config.shards = 2;
  config.queue_capacity = 4;  // small: keeps producers and workers overlapping
  InferenceServer server(system, config);
  for (int cam = 0; cam < 4; ++cam) {
    server.add_camera(std::make_unique<runtime::SyntheticCameraSource>(
        cam, small_scene(), system.pattern_ref(),
        900 + static_cast<std::uint64_t>(cam)));
  }

  std::atomic<bool> done{false};  // order: run-finished flag for the sampler loop only
  std::vector<obs::MetricsSnapshot> mid_snaps;
  std::thread sampler([&server, &done, &mid_snaps] {
    while (!done.load(std::memory_order_relaxed)) {
      obs::MetricsSnapshot snap = server.metrics_snapshot();
      const std::string json = obs::to_json(snap);
      EXPECT_NO_THROW(json::Parser(json).parse()) << json;
      mid_snaps.push_back(std::move(snap));
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  const std::vector<runtime::TaskResult> results = server.run(24);
  done.store(true, std::memory_order_relaxed);
  sampler.join();
  EXPECT_EQ(results.size(), 4U * 24U);

  const obs::MetricsSnapshot final_snap = server.metrics_snapshot();
  EXPECT_NO_THROW(json::Parser(obs::to_json(final_snap)).parse());
  auto counter_value = [](const obs::MetricsSnapshot& snap, const std::string& name) {
    for (const auto& entry : snap.counters) {
      if (entry.first == name) {
        return entry.second;
      }
    }
    return std::uint64_t{0};
  };
  for (const obs::MetricsSnapshot& snap : mid_snaps) {
    for (const auto& entry : snap.counters) {
      EXPECT_LE(entry.second, counter_value(final_snap, entry.first)) << entry.first;
    }
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
      EXPECT_LE(snap.histograms[i].count, final_snap.histograms[i].count)
          << snap.histograms[i].name;
    }
  }
  // The sampler genuinely overlapped the run (non-vacuous): the LAST mid-run
  // sample must postdate the first serve. With 96 frames and a 300 us sample
  // period this never fires spuriously.
  ASSERT_FALSE(mid_snaps.empty());
  EXPECT_GT(counter_value(final_snap, "snappix_frames_total"), 0U);
}

// --- EngineCache: miss storm on one pattern across precision tiers -----------

// Minimal engine: just enough state for the cache to hand out. Building one
// is instant, so factory calls interleave as fast as the shard lock allows.
class StubEngine : public runtime::VitEngine {
 public:
  explicit StubEngine(Precision precision) : precision_(precision) {}

  Tensor classify_logits(const Tensor& coded) const override {
    return Tensor::full(Shape{coded.shape()[0], 1}, 0.0F);
  }
  Tensor reconstruct(const Tensor&) const override {
    throw std::runtime_error("StubEngine: no rec head");
  }
  bool has_rec_head() const override { return false; }
  Precision precision() const override { return precision_; }
  const models::ViTConfig& config() const override { return config_; }

 private:
  Precision precision_;
  models::ViTConfig config_;
};

TEST(EngineCacheStress, MissStormOnOnePatternAcrossTiersStaysConsistent) {
  EngineCacheConfig config;
  config.shards = 1;
  config.capacity_per_shard = 1;  // fp32 and int8 entries evict each other
  std::atomic<std::uint64_t> builds{0};  // order: relaxed tally, read after joins
  EngineCache cache(config, [&builds](const ce::CePattern&, Precision precision) {
    builds.fetch_add(1, std::memory_order_relaxed);
    return std::make_shared<StubEngine>(precision);
  });

  Rng rng(17);
  const PatternRef pattern =
      runtime::make_pattern_ref(ce::CePattern::random(8, 8, rng, 0.5F));
  const std::uint64_t id = pattern->hash();

  constexpr int kThreads = 6;
  constexpr int kResolvesEach = 250;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &pattern, id, t] {
      for (int i = 0; i < kResolvesEach; ++i) {
        // Alternating tiers, offset per thread, so both tiers are always in
        // flight and capacity 1 turns every other resolve into an eviction.
        const Precision tier =
            ((i + t) % 2 == 0) ? Precision::kFp32 : Precision::kInt8;
        const auto entry = cache.resolve(id, pattern, tier);
        ASSERT_NE(entry, nullptr);
        EXPECT_EQ(entry->precision, tier);
        ASSERT_NE(entry->engine, nullptr);
        EXPECT_EQ(entry->engine->precision(), tier);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  const auto totals = cache.counters();
  EXPECT_EQ(totals.hits + totals.misses,
            static_cast<std::uint64_t>(kThreads) * kResolvesEach);
  EXPECT_EQ(totals.misses, builds.load(std::memory_order_relaxed));
  EXPECT_GE(totals.misses, 2U);  // both tiers built at least once
  EXPECT_LE(cache.resident(), config.shards * config.capacity_per_shard);
  EXPECT_LE(cache.max_shard_occupancy(), config.capacity_per_shard);
  // Per-tier counters partition the totals.
  const auto fp32 = cache.counters(Precision::kFp32);
  const auto int8 = cache.counters(Precision::kInt8);
  EXPECT_EQ(fp32.hits + int8.hits, totals.hits);
  EXPECT_EQ(fp32.misses + int8.misses, totals.misses);
}

// --- trace: export racing lane writers ---------------------------------------

TEST(TraceExportRaces, LaneWritersWhileExportingSeeConsistentPrefixes) {
  obs::TraceConfig config;
  config.enabled = true;
  // Crosses two chunk boundaries (kChunkEvents = 1024) AND overflows, so the
  // race covers lazy chunk materialization and the dropped counter.
  config.max_events_per_lane = 2500;
  obs::TraceRecorder recorder(config);

  constexpr int kLanes = 3;
  constexpr int kEventsEach = 3000;  // 500 past capacity per lane
  std::vector<obs::TraceLane*> lanes;
  lanes.reserve(kLanes);
  for (int i = 0; i < kLanes; ++i) {
    lanes.push_back(recorder.create_lane("writer-" + std::to_string(i)));
  }

  std::atomic<bool> writing{true};  // order: start/stop flag for readers only
  std::vector<std::thread> writers;
  writers.reserve(kLanes);
  for (int w = 0; w < kLanes; ++w) {
    writers.emplace_back([lane = lanes[static_cast<std::size_t>(w)], w] {
      for (int i = 0; i < kEventsEach; ++i) {
        lane->add_complete("span-" + std::to_string(w), /*ts_ns=*/i + 1,
                           /*dur_ns=*/1);
      }
    });
  }

  std::vector<std::thread> readers;
  readers.reserve(2);
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&recorder, &writing] {
      while (writing.load(std::memory_order_relaxed)) {
        // all_events() must observe a consistent prefix of every lane: fully
        // written names and the per-lane monotone timestamps we wrote.
        const std::vector<obs::TraceEvent> events = recorder.all_events();
        std::vector<std::int64_t> last_ts(kLanes, 0);
        for (const obs::TraceEvent& event : events) {
          ASSERT_LT(event.tid, static_cast<std::uint64_t>(kLanes));
          ASSERT_EQ(event.name, "span-" + std::to_string(event.tid));
          EXPECT_GT(event.ts_ns, last_ts[event.tid]);
          last_ts[event.tid] = event.ts_ns;
        }
        (void)recorder.dropped_events();
        std::this_thread::yield();
      }
    });
  }
  // One more reader hammers the full JSON export path mid-write; the strict
  // parser turns any torn emission into a test failure.
  std::thread json_reader([&recorder, &writing] {
    while (writing.load(std::memory_order_relaxed)) {
      EXPECT_NO_THROW(json::Parser(recorder.chrome_json()).parse());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (auto& t : writers) {
    t.join();
  }
  writing.store(false, std::memory_order_relaxed);
  for (auto& t : readers) {
    t.join();
  }
  json_reader.join();

  // Quiescent totals are exact: capacity kept, overflow counted.
  EXPECT_EQ(recorder.all_events().size(),
            static_cast<std::size_t>(kLanes) * config.max_events_per_lane);
  EXPECT_EQ(recorder.dropped_events(),
            static_cast<std::size_t>(kLanes) *
                (kEventsEach - config.max_events_per_lane));
}

// --- scheduler: teardown with producers mid-push -----------------------------

TEST(SchedulerStress, ExternalCloseMidStreamUnblocksProducersAndTearsDown) {
  runtime::RuntimeStats stats;
  FrameQueue queue_a(2);
  FrameQueue queue_b(2);
  {
    runtime::StreamScheduler scheduler(stats, /*threads=*/2);
    Rng rng(23);
    const PatternRef pattern =
        runtime::make_pattern_ref(ce::CePattern::random(8, 8, rng, 0.5F));
    scheduler.add_camera(std::make_unique<runtime::SyntheticCameraSource>(
                             0, small_scene(), pattern, 101),
                         queue_a);
    scheduler.add_camera(std::make_unique<runtime::SyntheticCameraSource>(
                             1, small_scene(), pattern, 102),
                         queue_b);

    // A stream far longer than the consumers will drain: both producers are
    // guaranteed to be blocked in push() when the close lands.
    scheduler.start(10'000);

    Frame out;
    std::size_t popped = 0;
    for (int i = 0; i < 6; ++i) {
      if (queue_a.pop(out)) {
        ++popped;
      }
      if (queue_b.pop(out)) {
        ++popped;
      }
    }
    EXPECT_GT(popped, 0U);

    queue_a.close();
    queue_b.close();
    scheduler.join();  // must return: blocked pushes observe the close
    // scheduler destructor runs here, with frames still queued — teardown
    // mid-batch must not touch the (external) queues again.
  }
  EXPECT_TRUE(queue_a.closed());
  EXPECT_TRUE(queue_b.closed());
  // Drain whatever the close stranded; both queues then report exhausted.
  Frame out;
  while (queue_a.pop(out)) {
  }
  while (queue_b.pop(out)) {
  }
  EXPECT_TRUE(queue_a.exhausted());
  EXPECT_TRUE(queue_b.exhausted());
}

// --- server: full sharded run under a tiny queue, repeated -------------------

// End-to-end interleaving torture: 2 shards + stealing + tracing + a tiny
// queue capacity, repeated so shard workers, thieves, producers, and the
// trace/metrics readers above all collide differently each round. The
// assertion is the serving contract itself: result count and determinism.
TEST(ServerStress, RepeatedShardedStealingRunsStayDeterministic) {
  core::SnapPixSystem system(small_system_config());
  std::vector<std::int64_t> reference;
  for (int round = 0; round < 3; ++round) {
    ServerConfig config;
    config.batch.max_batch = 3;
    config.shards = 2;
    config.queue_capacity = 2;
    config.trace.enabled = true;
    config.trace.sample_every = 2;
    InferenceServer server(system, config);
    for (int cam = 0; cam < 3; ++cam) {
      server.add_camera(std::make_unique<runtime::SyntheticCameraSource>(
          cam, small_scene(), system.pattern_ref(),
          400 + static_cast<std::uint64_t>(cam)));
    }
    const std::vector<runtime::TaskResult> results = server.run(10);
    ASSERT_EQ(results.size(), 30U);
    std::vector<std::int64_t> predicted;
    predicted.reserve(results.size());
    for (const auto& r : results) {
      predicted.push_back(r.predicted);
    }
    if (round == 0) {
      reference = predicted;
    } else {
      EXPECT_EQ(predicted, reference) << "round " << round;
    }
    EXPECT_NO_THROW(json::Parser(server.trace_json()).parse());
  }
}

// --- overload: admission rejection + drop-late racing close/steal ------------

// The overload arm of the suite: best-effort producers hammering admission
// rejection, deadlined frames expiring mid-flight, consumers dropping them
// late, a thief shedding them out of stolen runs, and a close() racing all of
// it. Under TSan this is the proof that the shed path (counter bumps +
// observer callbacks on three different thread roles) is race-free; the
// assertions are the exact-accounting laws, which no interleaving may bend.
TEST(OverloadStress, ShedAccountingStaysExactUnderAdmissionExpiryAndCloseRaces) {
  using runtime::Clock;
  using runtime::PushResult;
  using runtime::QosClass;
  using runtime::ShedReason;

  for (int round = 0; round < 6; ++round) {
    FrameQueue queue(2);
    std::atomic<std::uint64_t> observed_full{0};     // order: relaxed tally, read after joins
    std::atomic<std::uint64_t> observed_expired{0};  // order: relaxed tally, read after joins
    queue.set_shed_observer([&](const Frame& frame, ShedReason reason) {
      (void)frame;
      (reason == ShedReason::kQueueFull ? observed_full : observed_expired)
          .fetch_add(1, std::memory_order_relaxed);
    });

    std::atomic<std::uint64_t> accepted{0};  // order: relaxed tally, read after joins
    std::atomic<std::uint64_t> rejected{0};  // order: relaxed tally, read after joins
    std::atomic<std::uint64_t> surfaced{0};  // order: relaxed tally, read after joins
    const Clock::time_point expired_at_birth = Clock::now();

    constexpr int kProducers = 4;
    constexpr std::int64_t kFramesEach = 150;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      // Producers 0-1 best-effort (half their frames pre-expired, so both
      // shed reasons fire constantly), 2 standard, 3 realtime (stealing must
      // route around its frames while everything else churns).
      const QosClass qos = p <= 1   ? QosClass::kBestEffort
                           : p == 2 ? QosClass::kStandard
                                    : QosClass::kRealtime;
      producers.emplace_back([&, p, qos] {
        for (std::int64_t i = 0; i < kFramesEach; ++i) {
          Frame frame = tiny_frame(p, i);
          frame.qos = qos;
          if (qos == QosClass::kBestEffort && i % 2 == 0) {
            frame.deadline = expired_at_birth;
          }
          const PushResult r = queue.admit(std::move(frame));
          if (r == PushResult::kClosed) {
            return;  // close() raced us: stop, count nothing
          }
          (r == PushResult::kAccepted ? accepted : rejected)
              .fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    std::vector<std::thread> consumers;
    for (int c = 0; c < 2; ++c) {
      consumers.emplace_back([&] {
        Frame out;
        while (queue.pop(out)) {
          surfaced.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::thread thief([&] {
      std::vector<Frame> batch;
      while (!queue.exhausted()) {
        if (queue.steal_tail(batch, 2)) {
          for (const Frame& f : batch) {
            ASSERT_NE(f.qos, QosClass::kRealtime);  // never exported by a steal
          }
          surfaced.fetch_add(batch.size(), std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });

    // Rounds 0-2 close mid-stream (producers observe kClosed and bail);
    // rounds 3-5 let every producer finish first, so both shutdown shapes
    // get TSan coverage.
    if (round < 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      queue.close();
      for (auto& t : producers) {
        t.join();
      }
    } else {
      for (auto& t : producers) {
        t.join();
      }
      queue.close();
    }
    for (auto& t : consumers) {
      t.join();
    }
    thief.join();

    // Exact accounting, independent of the interleaving:
    //   accepted == surfaced + drop-late sheds      (conservation)
    //   rejected == admission sheds                  (taxonomy: closes are
    //                                                not sheds — producers
    //                                                that saw kClosed counted
    //                                                nothing, and neither may
    //                                                the queue)
    //   observer fired once per shed, per reason
    EXPECT_EQ(accepted.load(std::memory_order_relaxed),
              surfaced.load(std::memory_order_relaxed) + queue.shed_expired())
        << "round " << round;
    EXPECT_EQ(queue.shed_admission(), rejected.load(std::memory_order_relaxed))
        << "round " << round;
    EXPECT_EQ(queue.total_pushed(), accepted.load(std::memory_order_relaxed))
        << "round " << round;
    EXPECT_EQ(observed_full.load(std::memory_order_relaxed), queue.shed_admission());
    EXPECT_EQ(observed_expired.load(std::memory_order_relaxed), queue.shed_expired());
    EXPECT_TRUE(queue.exhausted());
  }
}

// --- scheduler: teardown mid-retransmit-backoff and while quarantined --------

// An 8x8 replay camera on an all-drop framed link: every transfer is corrupt,
// so under kRetransmit its producer lives inside the retry loop.
std::unique_ptr<runtime::ReplayCameraSource> dead_link_replay_camera(int id) {
  Rng rng(40 + static_cast<std::uint64_t>(id));
  std::vector<float> data(64);
  for (float& v : data) {
    v = rng.uniform(0.0F, 1.0F);
  }
  std::vector<Tensor> coded;
  coded.push_back(Tensor::from_vector(std::move(data), Shape{8, 8}));
  auto camera = std::make_unique<runtime::ReplayCameraSource>(
      id, runtime::make_pattern_ref(ce::CePattern::long_exposure(8, 8)),
      std::move(coded), std::vector<std::int64_t>{});
  transport::LinkConfig link;
  link.faults.packet_drop_rate = 1.0;
  link.faults.seed = 900 + static_cast<std::uint64_t>(id);
  camera->set_framed(link);
  return camera;
}

// Shutdown order 1: the scheduler is destroyed while both producers are
// asleep mid-retransmit-backoff and the queues are still open. The destructor
// must wake the sleepers first (request_stop) and only then close the queues;
// a woken producer abandons the frame instead of sleeping out the remaining
// 250 ms x frames of backoff schedule, so teardown is prompt and every frame
// of the budget is still accounted for.
TEST(SchedulerStress, DestructionMidRetransmitBackoffWakesProducersAndTearsDown) {
  constexpr std::int64_t kFrames = 300;
  runtime::RuntimeStats stats;
  FrameQueue queue(4);
  {
    runtime::TransportPolicy policy;
    policy.corrupt = runtime::TransportPolicy::Corrupt::kRetransmit;
    policy.max_retransmits = 10'000;
    policy.backoff_initial = std::chrono::milliseconds(250);
    policy.backoff_max = std::chrono::seconds(2);
    runtime::StreamScheduler scheduler(stats, /*threads=*/2, policy);
    scheduler.add_camera(dead_link_replay_camera(0), queue);
    scheduler.add_camera(dead_link_replay_camera(1), queue);
    scheduler.start(kFrames);
    // Let both producers take their first corrupt frame and park in backoff.
    // Transport is recorded only after the retry loop ends, and ending it
    // pre-stop would take 10'000 retries under an ever-growing backoff — so
    // a zero count here proves both producers are parked inside the loop.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_EQ(stats.summary(1.0).transport.framed_frames, 0U);
    // Destructor runs here: queues still open, producers mid-backoff.
  }
  EXPECT_TRUE(queue.closed());
  // Post-stop iterations degrade to one un-slept transfer each, so the full
  // budget drains fast and exactly: every frame was offered, none recovered.
  const runtime::RuntimeSummary summary = stats.summary(1.0);
  EXPECT_EQ(summary.transport.framed_frames, static_cast<std::uint64_t>(2 * kFrames));
  EXPECT_EQ(summary.transport.dropped_frames, static_cast<std::uint64_t>(2 * kFrames));
  Frame out;
  EXPECT_FALSE(queue.pop(out));  // nothing ever survived the dead links
}

// Shutdown order 2: the queues are closed externally FIRST (mid-stream, with
// one camera quarantined by the health controller and one healthy camera
// blocked in admit()), and the scheduler is destroyed afterwards. The
// quarantined producer keeps burning its budget as counted quarantine drops
// and must never wedge teardown; the blocked producer observes the close.
TEST(SchedulerStress, ExternalCloseThenDestructionWhileQuarantinedTearsDown) {
  constexpr std::int64_t kFrames = 2000;
  runtime::RuntimeStats stats;
  runtime::HealthConfig health_config;
  health_config.enabled = true;
  health_config.window = 4;
  health_config.quarantine_consecutive_losses = 2;
  health_config.quarantine_hold = 1 << 20;  // longer than the budget: stays down
  runtime::HealthController health(health_config, stats);
  FrameQueue queue(4);
  {
    runtime::TransportPolicy policy;
    policy.corrupt = runtime::TransportPolicy::Corrupt::kRetransmit;
    policy.max_retransmits = 4;
    policy.backoff_initial = std::chrono::microseconds(50);
    runtime::StreamScheduler scheduler(stats, /*threads=*/2, policy);
    // Camera 0: dead link, quarantined after two consecutive losses.
    auto dead = dead_link_replay_camera(0);
    health.attach(*dead);
    scheduler.add_camera(std::move(dead), queue);
    // Camera 1: synthetic, in-memory, healthy — exists to be blocked in
    // admit() on the tiny queue when the external close lands.
    Rng rng(29);
    auto clean = std::make_unique<runtime::SyntheticCameraSource>(
        1, small_scene(),
        runtime::make_pattern_ref(ce::CePattern::random(8, 8, rng, 0.5F)), 104);
    health.attach(*clean);
    scheduler.add_camera(std::move(clean), queue);
    scheduler.set_health(&health);
    scheduler.start(kFrames);

    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (health.state(0) != runtime::HealthState::kQuarantined) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "camera 0 never reached quarantine";
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    queue.close();  // external close first; destructor (stop + re-close) second
  }
  EXPECT_TRUE(queue.closed());
  // The quarantined camera's whole budget is accounted for: the frames that
  // reached the wire before quarantine plus every capture skipped after it.
  const runtime::CameraHealthSnapshot snapshot = health.snapshot(0);
  EXPECT_EQ(snapshot.state, runtime::HealthState::kQuarantined);
  EXPECT_GT(snapshot.quarantine_drops, 0U);
  const runtime::RuntimeSummary summary = stats.summary(1.0);
  std::uint64_t camera0_framed = 0;
  for (const auto& [camera_id, counters] : summary.transport_cameras) {
    if (camera_id == 0) {
      camera0_framed = counters.framed_frames;
    }
  }
  EXPECT_EQ(camera0_framed + snapshot.quarantine_drops,
            static_cast<std::uint64_t>(kFrames));
}

// --- chaos: burst faults + a stalled shard in one sharded run ----------------

// The cross-layer chaos arm (tests/chaos.h): a 2-shard server with health
// supervision and the watchdog enabled, one camera riding through a
// burst-noise episode on an entropy-coded link, and the fleet's home shard
// wedged mid-run by a SlowShard hook so the watchdog must detect the stall
// and re-route live traffic to the sibling. Work stealing is off so the
// rescue path — not the thief — is what moves the frames. The assertions are
// the resilience laws: exact per-camera conservation across served / shed /
// transport-dropped / quarantine-dropped, bit-identity of every answer from
// the healthy cameras (the ladder only ever touches the afflicted camera),
// and the stall actually being caught. Under TSan this is the proof that the
// health controller, watchdog rescue, and producer reroute protocol are
// race-free against the serving fabric.
TEST(ChaosStress, BurstFaultsAndStalledShardRescueConserveEveryFrame) {
  core::SnapPixSystem system(small_system_config());
  constexpr int kCameras = 4;
  constexpr int kBufferFrames = 6;
  constexpr std::int64_t kFramesPerCamera = 60;

  // Replay buffers + unloaded batch-1 references, computed over the codec
  // wire's quantize->dequantize round-trip (a clean full-depth codec link
  // reconstructs exactly that).
  std::vector<std::vector<Tensor>> buffers;
  std::vector<std::vector<std::int64_t>> reference;
  for (int cam = 0; cam < kCameras; ++cam) {
    Rng rng(100 + static_cast<std::uint64_t>(cam));
    std::vector<Tensor> coded;
    std::vector<std::int64_t> predictions;
    for (int i = 0; i < kBufferFrames; ++i) {
      std::vector<float> data(16 * 16);
      for (float& v : data) {
        v = rng.uniform(0.0F, 1.0F);
      }
      Tensor frame = Tensor::from_vector(std::move(data), Shape{16, 16});
      const Tensor wire = codec::dequantize_frame(codec::quantize_frame(frame));
      const Tensor batch1 = Tensor::from_vector(wire.data(), Shape{1, 16, 16});
      predictions.push_back(system.classify_coded(batch1)[0]);
      coded.push_back(std::move(frame));
    }
    buffers.push_back(std::move(coded));
    reference.push_back(std::move(predictions));
  }

  ServerConfig config;
  config.batch.max_batch = 4;
  config.shards = 2;
  config.queue_capacity = 4;
  config.work_stealing = false;
  config.transport.corrupt = runtime::TransportPolicy::Corrupt::kRetransmit;
  config.transport.max_retransmits = 2;
  config.transport.backoff_initial = std::chrono::microseconds(20);
  config.health.enabled = true;
  config.health.window = 8;
  config.health.watchdog.enabled = true;
  config.health.watchdog.poll = std::chrono::milliseconds(5);
  config.health.watchdog.stall_polls = 4;  // 20 ms >> the 2 ms batch max_delay
  // All cameras share the system pattern, so the whole fleet homes on one
  // shard — wedge exactly that one; the sibling only ever sees rescue
  // traffic. The 250 ms stall dwarfs the 20 ms detection threshold.
  const std::size_t home = system.pattern_ref()->hash() % 2;
  chaos::SlowShard slow(home, /*after_batches=*/2, std::chrono::milliseconds(250));
  config.before_batch = slow;

  InferenceServer server(system, config);
  for (int cam = 0; cam < kCameras; ++cam) {
    std::vector<chaos::Episode> schedule;
    if (cam == 0) {
      // Sequences [8, 24): heavy packet loss — corrupt beyond the retry
      // budget, driving camera 0's controller off kHealthy.
      schedule.push_back(chaos::burst(8, 24, /*bit_flip_per_byte=*/0.005,
                                      /*packet_drop_rate=*/0.5));
    }
    auto camera = std::make_unique<chaos::ChaosReplaySource>(
        cam, system.pattern_ref(), buffers[static_cast<std::size_t>(cam)],
        std::vector<std::int64_t>{}, std::move(schedule));
    transport::LinkConfig link;
    link.codec = true;
    link.faults.seed = 500 + static_cast<std::uint64_t>(cam);
    camera->set_framed(link);
    server.add_camera(std::move(camera));
  }

  const std::vector<runtime::TaskResult> results = server.run(kFramesPerCamera);
  const runtime::RuntimeSummary summary = server.summary();

  // The stall fired and the watchdog caught it.
  EXPECT_EQ(slow.stalls_left(), 0);
  EXPECT_GE(summary.watchdog_stalls, 1U);

  // Bit-identity: cameras 1-3 never left full fidelity, so every answer
  // matches the unloaded baseline no matter which shard served it.
  std::map<int, std::uint64_t> served;
  for (const runtime::TaskResult& r : results) {
    ++served[r.camera_id];
    if (r.camera_id == 0) {
      continue;  // the ladder may have lowered the afflicted camera's fidelity
    }
    ASSERT_EQ(r.predicted,
              reference[static_cast<std::size_t>(r.camera_id)]
                       [static_cast<std::size_t>(r.sequence % kBufferFrames)])
        << "camera " << r.camera_id << " sequence " << r.sequence;
  }

  std::map<int, std::uint64_t> shed;
  for (const auto& [camera_id, counters] : summary.shed_cameras) {
    shed[camera_id] = counters.queue_full + counters.deadline;
  }
  std::map<int, std::uint64_t> dropped;
  for (const auto& [camera_id, counters] : summary.transport_cameras) {
    dropped[camera_id] = counters.dropped_frames;
  }
  std::map<int, std::uint64_t> quarantined;
  std::map<int, std::uint64_t> transitions;
  for (const auto& [camera_id, counters] : summary.health_cameras) {
    quarantined[camera_id] = counters.quarantine_drops;
    transitions[camera_id] = counters.transitions;
  }

  // The chaos was real: the burst drove camera 0's state machine, and only
  // camera 0's — the episode never leaks sideways.
  EXPECT_GE(transitions[0], 1U);
  for (int cam = 1; cam < kCameras; ++cam) {
    EXPECT_EQ(transitions[cam], 0U) << "camera " << cam;
    EXPECT_EQ(dropped[cam], 0U) << "camera " << cam;
  }

  // Exact per-camera conservation: offered == served + shed + dropped on the
  // wire + dropped in quarantine, for the afflicted and healthy alike,
  // across stall, rescue, and recovery.
  for (int cam = 0; cam < kCameras; ++cam) {
    EXPECT_EQ(served[cam] + shed[cam] + dropped[cam] + quarantined[cam],
              static_cast<std::uint64_t>(kFramesPerCamera))
        << "camera " << cam;
  }
}

}  // namespace
}  // namespace snappix
