// Quickstart: the SNAPPIX pipeline in ~60 lines.
//
//   1. generate a synthetic labelled video dataset,
//   2. learn the decorrelated, tile-repetitive CE pattern (Sec. III),
//   3. compress 16 frames into one coded image (Eqn. 1),
//   4. train the CE-optimized ViT for action recognition (Sec. IV),
//   5. classify new clips from their coded images alone.
#include <cstdio>

#include "core/snappix.h"
#include "data/dataset.h"

int main() {
  using namespace snappix;

  // 1. Dataset: 10 motion classes, 16-frame grayscale clips.
  auto data_cfg = data::ssv2_like(/*frames=*/16, /*size=*/32);
  data_cfg.scene.num_classes = 6;
  data_cfg.train_per_class = 24;
  data_cfg.test_per_class = 8;
  const data::VideoDataset dataset(data_cfg);
  std::printf("dataset: %lld train / %lld test clips, %d classes\n",
              static_cast<long long>(dataset.train_size()),
              static_cast<long long>(dataset.test_size()), dataset.num_classes());

  // 2. The system: CE tile 8x8 aligned with the ViT patch size.
  core::SnapPixConfig config;
  config.image = 32;
  config.frames = 16;
  config.tile = 8;
  config.backbone = core::Backbone::kSnapPixS;
  config.num_classes = dataset.num_classes();
  core::SnapPixSystem system(config);

  train::PatternTrainConfig pattern_cfg;
  pattern_cfg.steps = 100;
  pattern_cfg.batch_size = 8;
  std::printf("learning decorrelated CE pattern (%d steps)...\n", pattern_cfg.steps);
  const auto pattern_result = system.learn_pattern(dataset, pattern_cfg);
  std::printf("final L_cor %.4f, exposure fraction %.2f\n",
              static_cast<double>(pattern_result.final_loss),
              static_cast<double>(system.pattern().exposure_fraction()));
  // 3. Compression: 16 frames -> 1 coded image (16x data reduction).
  std::vector<std::int64_t> labels;
  // One clip from each of four different classes (test split is ordered).
  const Tensor videos = dataset.test_batch({0, 9, 18, 27}, labels);
  const Tensor coded = system.encode(videos);
  std::printf("compressed %s video batch into %s coded images (16x reduction)\n",
              videos.shape().to_string().c_str(), coded.shape().to_string().c_str());

  // 4. Task training on coded images only.
  train::TrainConfig train_cfg;
  train_cfg.epochs = 12;
  train_cfg.batch_size = 16;
  train_cfg.lr = 3e-3F;
  std::printf("training action recognition (%d epochs)...\n", train_cfg.epochs);
  const auto fit = system.train_action_recognition(dataset, train_cfg);
  std::printf("test accuracy: %.1f%% (chance %.1f%%)\n",
              static_cast<double>(fit.test_metric * 100.0F),
              100.0 / dataset.num_classes());

  // 5. Inference from the coded image alone.
  const auto predictions = system.classify(videos);
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    std::printf("clip %zu: predicted %s, truth %s\n", i,
                data::motion_class_name(static_cast<data::MotionClass>(predictions[i])),
                data::motion_class_name(static_cast<data::MotionClass>(labels[i])));
  }
  return 0;
}
