// Hardware walkthrough of the CE pixel (paper Fig. 5 / Sec. V): traces the
// per-slot protocol on a tiny sensor so each phase — pattern streaming into
// the DFF shift chains, the pattern_reset pulse (M6/M1), exposure, the
// pattern_transfer pulse (M7/M3), and power gating — is visible, then shows
// that the captured coded image equals Eqn. 1 and reports the capture's
// cycle/energy accounting.
#include <cstdio>

#include "ce/encode.h"
#include "ce/pattern.h"
#include "sensor/pattern_memory.h"
#include "sensor/sensor.h"
#include "util/rng.h"

int main() {
  using namespace snappix;

  std::printf("== 1. the tile-repetitive CE pattern (T=4 slots, 2x2 tile) ==\n\n");
  Rng rng(7);
  ce::CePattern pattern = ce::CePattern::sparse_random(4, 2, rng);
  std::printf("%s\n", pattern.to_string().c_str());

  std::printf("== 2. streaming slot 0 into a tile's DFF shift chain ==\n\n");
  sensor::DffShiftChain chain(4);
  const auto bits = pattern.slot_bits(0);
  std::printf("slot 0 bits (raster order): %d %d %d %d\n", bits[0], bits[1], bits[2], bits[3]);
  chain.load_slot(bits);
  std::printf("after %llu pattern-clk cycles, DFF outputs: %d %d %d %d\n",
              static_cast<unsigned long long>(chain.cycles()), chain.bit_at(0), chain.bit_at(1),
              chain.bit_at(2), chain.bit_at(3));
  chain.power_gate();
  std::printf("chain power-gated until the transfer phase "
              "(4 wires total: in/clk/reset/transfer)\n\n");

  std::printf("== 3. full capture on an 8x8 sensor ==\n\n");
  sensor::SensorConfig config;
  config.height = 8;
  config.width = 8;
  config.adc.full_scale = config.electrons_per_unit * 4;
  config.pixel.full_well_electrons = config.adc.full_scale;
  sensor::StackedSensor sensor(config, pattern);
  const Tensor scene = Tensor::rand_uniform(Shape{4, 8, 8}, rng);
  Rng capture_rng(11);
  const Tensor captured = sensor.capture(scene, capture_rng);
  const Tensor ideal = sensor.ideal_codes(scene);
  float max_err = 0.0F;
  for (std::size_t i = 0; i < captured.data().size(); ++i) {
    max_err = std::max(max_err, std::abs(captured.data()[i] - ideal.data()[i]));
  }
  std::printf("captured coded image vs Eqn. 1 prediction: max |error| = %.1f LSB\n\n",
              static_cast<double>(max_err));

  const auto& stats = sensor.stats();
  std::printf("capture accounting:\n");
  std::printf("  pattern clk cycles per chain : %llu (2 streams x 4 slots x 4 bits)\n",
              static_cast<unsigned long long>(stats.pattern_clk_cycles));
  std::printf("  total pattern bits streamed  : %llu across %lld tile chains\n",
              static_cast<unsigned long long>(stats.pattern_bits_streamed),
              static_cast<long long>(sensor.tiles()));
  std::printf("  pd resets (M1 via M6)        : %llu\n",
              static_cast<unsigned long long>(stats.pd_resets));
  std::printf("  charge transfers (M3 via M7) : %llu\n",
              static_cast<unsigned long long>(stats.charge_transfers));
  std::printf("  adc conversions              : %llu\n",
              static_cast<unsigned long long>(stats.adc_conversions));
  std::printf("  mipi bytes (with packet hdrs): %llu\n",
              static_cast<unsigned long long>(stats.mipi_bytes));
  std::printf("  frame time                   : %.3f ms\n", stats.frame_time_s * 1e3);

  std::printf("\n== 4. noise study: same scene, noise enabled ==\n\n");
  sensor::SensorConfig noisy = config;
  noisy.noise.enabled = true;
  sensor::StackedSensor noisy_sensor(noisy, pattern);
  Rng noisy_rng(13);
  const Tensor noisy_capture = noisy_sensor.capture(scene, noisy_rng);
  double mean_abs = 0.0;
  for (std::size_t i = 0; i < noisy_capture.data().size(); ++i) {
    mean_abs += std::abs(noisy_capture.data()[i] - ideal.data()[i]);
  }
  mean_abs /= static_cast<double>(noisy_capture.data().size());
  std::printf("with shot/read/fixed-pattern noise: mean |error| = %.2f LSB\n", mean_abs);
  return 0;
}
