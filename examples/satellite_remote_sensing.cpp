// Remote-sensing cubesat scenario (paper intro, ref [2]): a LoRa-connected
// satellite/ground sensor where the wireless link utterly dominates the
// energy budget. This example sweeps the number of exposure slots T and the
// wireless technology, and converts the savings into battery-life terms —
// the deployment question a remote-sensing engineer actually asks.
#include <cstdio>

#include "energy/model.h"
#include "energy/scenario.h"
#include "hw/area.h"

int main() {
  using namespace snappix;
  using energy::WirelessTech;

  const energy::EnergyModel model;
  constexpr std::int64_t kPixels = 112 * 112;
  constexpr double kBatteryJ = 3.7 * 3600.0 * 2.0;  // 2 Ah single-cell LiPo

  std::printf("== remote sensing node: energy per captured window vs T ==\n\n");
  std::printf("%-6s %24s %24s\n", "T", "passive wi-fi saving", "lora backscatter saving");
  for (const int slots : {2, 4, 8, 16, 32}) {
    const auto wifi = energy::offload_scenario(model, kPixels, slots,
                                               WirelessTech::kPassiveWifi);
    const auto lora = energy::offload_scenario(model, kPixels, slots,
                                               WirelessTech::kLoraBackscatter);
    std::printf("%-6d %23.2fx %23.2fx\n", slots, wifi.saving_factor, lora.saving_factor);
  }

  std::printf("\n== battery life on a 2 Ah cell, one 16-frame window per minute ==\n\n");
  for (const auto tech : {WirelessTech::kPassiveWifi, WirelessTech::kLoraBackscatter}) {
    const auto scenario = energy::offload_scenario(model, kPixels, 16, tech);
    const double conventional_days =
        kBatteryJ / scenario.baseline_j / (60.0 * 24.0);
    const double snappix_days = kBatteryJ / scenario.snappix_j / (60.0 * 24.0);
    std::printf("%-32s conventional %10.1f days   snappix %10.1f days\n",
                energy::wireless_tech_name(tech), conventional_days, snappix_days);
  }

  std::printf("\n== sensor augmentation cost at candidate process nodes ==\n\n");
  const hw::PixelAreaModel area;
  for (const int node : {65, 45, 28, 22}) {
    std::printf("  %2d nm: CE logic %5.2f um^2 per pixel -> %s\n", node,
                area.logic_area_um2(node),
                area.logic_hidden_under_aps(node) ? "hidden beneath the APS (free)"
                                                  : "exceeds the APS footprint");
  }
  std::printf("\nthe CE augmentation is area-free at <=32 nm while cutting the\n"
              "dominant LoRa transmission energy by the full compression factor.\n");
  return 0;
}
