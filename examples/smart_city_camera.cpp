// Smart-city traffic camera scenario (the paper's motivating deployment):
// a pole-mounted sensor node with no meaningful compute must stream to a
// server over passive Wi-Fi. This example runs the full hardware-in-the-loop
// pipeline — cycle-level sensor capture -> coded image -> server-side ViT —
// and accounts the edge energy per classified event against a conventional
// 16-frame camera.
#include <cstdio>

#include "core/snappix.h"
#include "data/dataset.h"
#include "energy/model.h"
#include "energy/scenario.h"
#include "sensor/sensor.h"

int main() {
  using namespace snappix;

  // Scene model: multi-object motion over textured background, like traffic
  // viewed from a pole camera. Labels = motion direction of the objects.
  auto data_cfg = data::k400_like(/*frames=*/16, /*size=*/32);
  data_cfg.scene.num_classes = 5;  // static + 4 travel directions
  data_cfg.scene.max_shapes = 3;
  data_cfg.train_per_class = 24;
  data_cfg.test_per_class = 8;
  const data::VideoDataset dataset(data_cfg);

  core::SnapPixConfig config;
  config.image = 32;
  config.frames = 16;
  config.tile = 8;
  config.num_classes = dataset.num_classes();
  core::SnapPixSystem system(config);

  std::printf("== smart-city camera: training the deployment ==\n");
  train::PatternTrainConfig pattern_cfg;
  pattern_cfg.steps = 100;
  pattern_cfg.batch_size = 8;
  system.learn_pattern(dataset, pattern_cfg);
  train::TrainConfig train_cfg;
  train_cfg.epochs = 14;
  train_cfg.batch_size = 16;
  train_cfg.lr = 3e-3F;
  const auto fit = system.train_action_recognition(dataset, train_cfg);
  std::printf("server-side model accuracy: %.1f%% (chance %.1f%%)\n\n",
              static_cast<double>(fit.test_metric * 100.0F), 100.0 / dataset.num_classes());

  // Hardware-in-the-loop: the pattern is streamed into the per-pixel DFFs of
  // the simulated stacked sensor, and classification runs on its ADC output.
  sensor::SensorConfig sensor_cfg = system.default_sensor_config();
  sensor_cfg.noise.enabled = true;  // realistic capture
  sensor::StackedSensor camera(sensor_cfg, system.pattern());
  Rng rng(1234);
  int correct = 0;
  const int events = 10;
  std::printf("== capturing %d traffic events on the simulated sensor ==\n", events);
  for (int i = 0; i < events; ++i) {
    const auto& sample = dataset.test_sample(i);
    const auto predicted = system.classify_via_sensor(sample.video, camera, rng);
    correct += predicted == sample.label ? 1 : 0;
  }
  std::printf("hardware-in-the-loop accuracy: %d/%d\n", correct, events);

  const auto& stats = camera.stats();
  std::printf("\nper-capture sensor activity (32x32, T=16):\n");
  std::printf("  pattern bits streamed : %llu (2 streams x 16 slots x 64 bits x %lld tiles)\n",
              static_cast<unsigned long long>(stats.pattern_bits_streamed),
              static_cast<long long>(camera.tiles()));
  std::printf("  pd resets / transfers : %llu / %llu\n",
              static_cast<unsigned long long>(stats.pd_resets),
              static_cast<unsigned long long>(stats.charge_transfers));
  std::printf("  adc conversions       : %llu (vs %llu for a 16-frame capture)\n",
              static_cast<unsigned long long>(stats.adc_conversions),
              static_cast<unsigned long long>(stats.adc_conversions * 16));
  std::printf("  mipi bytes            : %llu\n",
              static_cast<unsigned long long>(stats.mipi_bytes));
  std::printf("  frame time            : %.2f ms (%.1f%% exposure)\n",
              stats.frame_time_s * 1e3, 100.0 * stats.exposure_time_s / stats.frame_time_s);

  // Edge energy budget, paper Sec. VI-D constants.
  const energy::EnergyModel energy_model;
  const auto scenario = energy::offload_scenario(
      energy_model, config.image * config.image, config.frames,
      energy::WirelessTech::kPassiveWifi);
  std::printf("\nedge energy per event (sensing + passive Wi-Fi):\n");
  std::printf("  conventional 16-frame camera : %.3f uJ\n", scenario.baseline_j * 1e6);
  std::printf("  snappix coded camera         : %.3f uJ\n", scenario.snappix_j * 1e6);
  std::printf("  saving                       : %.2fx\n", scenario.saving_factor);
  return 0;
}
