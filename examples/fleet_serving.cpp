// Fleet serving: a heterogeneous CE camera fleet streaming into one shared
// task-typed inference server.
//
//   1. train a small SNAPPIX system (pattern + AR head) on synthetic data,
//   2. stand up a runtime::InferenceServer over a mixed fleet — most cameras
//      share the system's learned pattern through one PatternRef (zero
//      copies), one camera carries its own distinct pattern, one camera
//      requests video reconstruction instead of classification, and one
//      camera opts into the int8 quantized engine tier,
//   3. serve everything through TWO work-stealing consumer shards with
//      batched fused-engine inference: batches split by (pattern, task),
//      engines resolved through each shard's private pattern->engine cache,
//      and an idle shard stealing key-pure tail batches from its sibling,
//   4. observe the run live: frame-lifecycle tracing is on (1-in-2 per-camera
//      sampling), a helper thread snapshots the lock-free metrics registry
//      MID-RUN without stalling a worker, and the full trace is written to
//      fleet_trace.json — load it in Perfetto / chrome://tracing to see each
//      sampled frame's capture -> queue_wait -> batch_assembly -> infer spans,
//   5. report accuracy, throughput, latency percentiles, cache and steal
//      traffic per shard, bytes-on-wire, and the fleet's Sec. VI-D energy
//      bill.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "core/snappix.h"
#include "obs/metrics.h"
#include "runtime/camera.h"
#include "runtime/server.h"

int main() {
  using namespace snappix;

  std::printf("=== SNAPPIX fleet serving demo ===\n\n");

  // 1. A small system: 16x16 frames, T = 8 slots, 4 motion classes.
  core::SnapPixConfig cfg;
  cfg.image = 16;
  cfg.frames = 8;
  cfg.num_classes = 4;
  cfg.seed = 21;
  core::SnapPixSystem system(cfg);

  auto data_cfg = data::ucf101_like(/*frames=*/8, /*size=*/16);
  data_cfg.scene.num_classes = 4;
  data_cfg.train_per_class = 32;
  data_cfg.test_per_class = 8;
  const data::VideoDataset dataset(data_cfg);

  std::printf("learning CE pattern + training AR head...\n");
  train::PatternTrainConfig pattern_cfg;
  pattern_cfg.steps = 40;
  pattern_cfg.batch_size = 8;
  system.learn_pattern(dataset, pattern_cfg);
  train::TrainConfig train_cfg;
  train_cfg.epochs = 12;
  train_cfg.batch_size = 16;
  train_cfg.lr = 2e-3F;
  const auto fit = system.train_action_recognition(dataset, train_cfg);
  std::printf("  test accuracy (offline): %.2f\n\n", static_cast<double>(fit.test_metric));

  // 2. A heterogeneous 7-camera fleet. Cameras 0-4 share the system's learned
  // pattern through ONE shared instance; camera 5 carries its own pattern
  // (the server caches a second engine entry for it); camera 6 requests
  // reconstruction instead of classification.
  data::SceneConfig scene = data_cfg.scene;
  runtime::ServerConfig server_cfg;
  server_cfg.batch.max_batch = 6;
  server_cfg.batch.max_delay = std::chrono::microseconds(3000);
  server_cfg.cache.shards = 2;
  server_cfg.cache.capacity_per_shard = 4;
  server_cfg.shards = 2;  // two consumer workers; idle one steals tail batches
  server_cfg.trace.enabled = true;  // per-frame spans for every 2nd frame/camera
  server_cfg.trace.sample_every = 2;
  runtime::InferenceServer server(system, server_cfg);

  const runtime::PatternRef learned = system.pattern_ref();
  for (int cam = 0; cam < 3; ++cam) {
    server.add_camera(std::make_unique<runtime::SyntheticCameraSource>(
        cam, scene, learned, 900 + static_cast<std::uint64_t>(cam)));
  }
  {
    // Camera 3 serves through the int8 tier: the server calibrates a
    // QuantizedVitEngine for the learned pattern on first touch (seeded, so
    // rebuilds are identical) and keeps it cached next to the fp32 engine.
    auto int8_camera = std::make_unique<runtime::DatasetCameraSource>(
        3, std::make_shared<const data::VideoDataset>(data_cfg), learned);
    int8_camera->set_precision(runtime::Precision::kInt8);
    server.add_camera(std::move(int8_camera));
  }
  server.add_camera(std::make_unique<runtime::SensorCameraSource>(
      4, system.default_sensor_config(), scene, learned, 906));
  {
    Rng pattern_rng(77);
    server.add_camera(std::make_unique<runtime::SyntheticCameraSource>(
        5, scene, runtime::make_pattern_ref(ce::CePattern::random(8, cfg.tile, pattern_rng, 0.5F)),
        907));
  }
  {
    auto rec_camera =
        std::make_unique<runtime::SyntheticCameraSource>(6, scene, learned, 908);
    rec_camera->set_task(runtime::Task::kReconstruct);
    server.add_camera(std::move(rec_camera));
  }

  // 3. Stream 25 frames per camera through the batched server. While run()
  // blocks, a helper thread takes a live registry snapshot — every write in
  // the registry is lock-free, so this never stalls a shard worker.
  std::printf("serving %zu cameras x 25 frames (2 patterns, AR+REC mix)...\n",
              server.camera_count());
  std::thread monitor([&server] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    const obs::MetricsSnapshot live = server.metrics_snapshot();
    std::uint64_t frames = 0;
    std::uint64_t batches = 0;
    for (const auto& [name, value] : live.counters) {
      if (name == "snappix_frames_total") {
        frames = value;
      } else if (name == "snappix_batches_total") {
        batches = value;
      }
    }
    std::printf("  [mid-run snapshot] %llu frames served in %llu batches so far\n",
                static_cast<unsigned long long>(frames),
                static_cast<unsigned long long>(batches));
  });
  const auto results = server.run(/*frames_per_camera=*/25);
  monitor.join();

  int correct = 0;
  int labelled = 0;
  int reconstructed = 0;
  for (const auto& r : results) {
    if (r.task == runtime::Task::kReconstruct) {
      ++reconstructed;
      continue;
    }
    if (r.label >= 0) {
      ++labelled;
      correct += r.predicted == r.label ? 1 : 0;
    }
  }

  // 4. Report.
  const auto summary = server.summary();
  std::printf("\n%s", runtime::to_string(summary).c_str());
  std::printf("  streaming accuracy: %d/%d (%.2f); %d clips reconstructed\n", correct,
              labelled, labelled > 0 ? static_cast<double>(correct) / labelled : 0.0,
              reconstructed);
  const auto wifi =
      server.fleet_energy(energy::EnergyModel{}, energy::WirelessTech::kPassiveWifi);
  const auto lora =
      server.fleet_energy(energy::EnergyModel{}, energy::WirelessTech::kLoraBackscatter);
  std::printf("  fleet energy, passive Wi-Fi: %.4f J vs %.4f J conventional (%.1fx saved)\n",
              wifi.snappix_j, wifi.conventional_j, wifi.saving_factor);
  std::printf("  fleet energy, LoRa backscatter: %.2f J vs %.2f J conventional (%.1fx saved)\n",
              lora.snappix_j, lora.conventional_j, lora.saving_factor);

  // 5. Export the frame-lifecycle trace for Perfetto / chrome://tracing.
  server.write_trace("fleet_trace.json");
  std::printf("  wrote fleet_trace.json (%zu trace events, %zu dropped) — open in Perfetto\n",
              server.trace_recorder()->all_events().size(),
              server.trace_recorder()->dropped_events());
  return 0;
}
