// Fleet serving: many CE cameras streaming into one shared ViT server.
//
//   1. train a small SNAPPIX system (pattern + AR head) on synthetic data,
//   2. stand up a StreamingRuntime over a heterogeneous camera fleet —
//      mathematical encoders, a dataset replayer, and a cycle-level
//      hardware-simulated sensor, each on its own producer thread,
//   3. serve everything through batched fused-engine inference,
//   4. report accuracy, throughput, latency percentiles, bytes-on-wire,
//      and the fleet's Sec. VI-D energy bill.
#include <cstdio>
#include <memory>

#include "core/snappix.h"
#include "runtime/camera.h"
#include "runtime/runtime.h"

int main() {
  using namespace snappix;

  std::printf("=== SNAPPIX fleet serving demo ===\n\n");

  // 1. A small system: 16x16 frames, T = 8 slots, 4 motion classes.
  core::SnapPixConfig cfg;
  cfg.image = 16;
  cfg.frames = 8;
  cfg.num_classes = 4;
  cfg.seed = 21;
  core::SnapPixSystem system(cfg);

  auto data_cfg = data::ucf101_like(/*frames=*/8, /*size=*/16);
  data_cfg.scene.num_classes = 4;
  data_cfg.train_per_class = 32;
  data_cfg.test_per_class = 8;
  const data::VideoDataset dataset(data_cfg);

  std::printf("learning CE pattern + training AR head...\n");
  train::PatternTrainConfig pattern_cfg;
  pattern_cfg.steps = 40;
  pattern_cfg.batch_size = 8;
  system.learn_pattern(dataset, pattern_cfg);
  train::TrainConfig train_cfg;
  train_cfg.epochs = 12;
  train_cfg.batch_size = 16;
  train_cfg.lr = 2e-3F;
  const auto fit = system.train_action_recognition(dataset, train_cfg);
  std::printf("  test accuracy (offline): %.2f\n\n", static_cast<double>(fit.test_metric));

  // 2. A heterogeneous 6-camera fleet sharing the learned pattern.
  data::SceneConfig scene = data_cfg.scene;
  runtime::RuntimeConfig rt_cfg;
  rt_cfg.batch.max_batch = 6;
  rt_cfg.batch.max_delay = std::chrono::microseconds(3000);
  runtime::StreamingRuntime rt(system, rt_cfg);
  for (int cam = 0; cam < 4; ++cam) {
    rt.add_camera(std::make_unique<runtime::SyntheticCameraSource>(
        cam, scene, system.pattern(), 900 + static_cast<std::uint64_t>(cam)));
  }
  rt.add_camera(std::make_unique<runtime::DatasetCameraSource>(
      4, std::make_shared<const data::VideoDataset>(data_cfg), system.pattern()));
  rt.add_camera(std::make_unique<runtime::SensorCameraSource>(
      5, system.default_sensor_config(), scene, system.pattern(), 906));

  // 3. Stream 25 frames per camera through the batched server.
  std::printf("serving 6 cameras x 25 frames...\n");
  const auto results = rt.run(/*frames_per_camera=*/25);

  int correct = 0;
  int labelled = 0;
  for (const auto& r : results) {
    if (r.label >= 0) {
      ++labelled;
      correct += r.predicted == r.label ? 1 : 0;
    }
  }

  // 4. Report.
  const auto summary = rt.summary();
  std::printf("\n%s", runtime::to_string(summary).c_str());
  std::printf("  streaming accuracy: %d/%d (%.2f)\n", correct, labelled,
              labelled > 0 ? static_cast<double>(correct) / labelled : 0.0);
  const auto wifi = rt.fleet_energy(energy::EnergyModel{}, energy::WirelessTech::kPassiveWifi);
  const auto lora =
      rt.fleet_energy(energy::EnergyModel{}, energy::WirelessTech::kLoraBackscatter);
  std::printf("  fleet energy, passive Wi-Fi: %.4f J vs %.4f J conventional (%.1fx saved)\n",
              wifi.snappix_j, wifi.conventional_j, wifi.saving_factor);
  std::printf("  fleet energy, LoRa backscatter: %.2f J vs %.2f J conventional (%.1fx saved)\n",
              lora.snappix_j, lora.conventional_j, lora.saving_factor);
  return 0;
}
