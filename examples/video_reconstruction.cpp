// Video reconstruction (the REC task of Sec. VI-A): recover all 16 frames
// from a single coded image. This is the "store now, decide later" scenario —
// coded images are archived and videos are reconstructed on demand for tasks
// that did not exist at capture time.
#include <cstdio>

#include "core/snappix.h"
#include "data/dataset.h"
#include "eval/metrics.h"

namespace {

// Coarse ASCII rendering of a frame for terminal inspection.
void print_frame(const snappix::Tensor& video, std::int64_t frame, std::int64_t height,
                 std::int64_t width) {
  static const char* kRamp = " .:-=+*#%@";
  for (std::int64_t y = 0; y < height; y += 2) {
    for (std::int64_t x = 0; x < width; ++x) {
      const float v = video.at({frame, y, x});
      const int level = std::max(0, std::min(9, static_cast<int>(v * 10.0F)));
      std::putchar(kRamp[level]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  using namespace snappix;

  auto data_cfg = data::ssv2_like(/*frames=*/16, /*size=*/32);
  data_cfg.scene.num_classes = 6;
  data_cfg.train_per_class = 24;
  data_cfg.test_per_class = 8;
  const data::VideoDataset dataset(data_cfg);

  core::SnapPixConfig config;
  config.image = 32;
  config.frames = 16;
  config.tile = 8;
  config.num_classes = dataset.num_classes();
  core::SnapPixSystem system(config);

  std::printf("learning decorrelated pattern + training reconstructor...\n");
  train::PatternTrainConfig pattern_cfg;
  pattern_cfg.steps = 100;
  pattern_cfg.batch_size = 8;
  system.learn_pattern(dataset, pattern_cfg);

  train::TrainConfig train_cfg;
  train_cfg.epochs = 10;
  train_cfg.batch_size = 16;
  train_cfg.lr = 3e-3F;
  const auto fit = system.train_reconstruction(dataset, train_cfg);
  std::printf("test PSNR: %.2f dB (paper reports 26-28.4 dB at 112x112)\n\n",
              static_cast<double>(fit.test_metric));

  // Reconstruct one clip and compare a frame visually.
  const auto& sample = dataset.test_sample(0);
  const Tensor batched = Tensor::from_vector(sample.video.data(), Shape{1, 16, 32, 32});
  const Tensor reconstructed_batch = system.reconstruct(batched);
  const Tensor reconstructed =
      Tensor::from_vector(reconstructed_batch.data(), Shape{16, 32, 32});
  std::printf("clip class: %s, per-clip PSNR %.2f dB\n",
              data::motion_class_name(static_cast<data::MotionClass>(sample.label)),
              static_cast<double>(eval::psnr_db(reconstructed, sample.video)));

  std::printf("\noriginal frame 8:\n");
  print_frame(sample.video, 8, 32, 32);
  std::printf("\nreconstructed frame 8 (from one coded image):\n");
  print_frame(reconstructed, 8, 32, 32);
  return 0;
}
